package experiments

import (
	"fmt"
	"io"

	"itask/internal/hwsim"
	"itask/internal/vit"
)

// E3Row is one row of Table 3: a device running one model configuration.
type E3Row struct {
	Device    string
	Model     string
	LatencyUS float64
	FPS       float64
	EnergyUJ  float64
}

// E3Result is the full hardware comparison (claims C3: 3.5× speedup,
// C4: 40% energy reduction vs GPU).
type E3Result struct {
	Rows                 []E3Row
	SpeedupVsGPU         float64
	SpeedupVsCPU         float64
	EnergyReductionVsGPU float64
}

// E3Hardware runs Table 3 on the paper-scale geometries: the quantized
// generalist (teacher geometry) on accelerator/GPU/CPU, plus the distilled
// student on the accelerator (the fastest deployable point).
func E3Hardware() E3Result {
	accel := hwsim.DefaultAccel()
	gpu := hwsim.DefaultGPU()
	cpu := hwsim.DefaultCPU()
	model := HWTeacherCfg()
	c := hwsim.Compare(accel, gpu, cpu, model)
	student := hwsim.SimulateAccel(accel, HWStudentCfg())
	res := E3Result{
		SpeedupVsGPU:         c.SpeedupVsGPU,
		SpeedupVsCPU:         c.SpeedupVsCPU,
		EnergyReductionVsGPU: c.EnergyReductionVsGPU,
	}
	add := func(model string, r hwsim.ModelReport) {
		res.Rows = append(res.Rows, E3Row{
			Device: r.Device, Model: model,
			LatencyUS: r.LatencyUS, FPS: r.FPS, EnergyUJ: r.TotalUJ,
		})
	}
	add("generalist", c.Accel)
	add("generalist", c.GPU)
	add("generalist", c.CPU)
	add("student", student)
	return res
}

// FprintE3 renders Table 3.
func FprintE3(w io.Writer, res E3Result) {
	fmt.Fprintf(w, "E3 (Table 3) — latency & energy, batch=1\n")
	fmt.Fprintf(w, "%-22s %-12s %12s %10s %12s\n", "device", "model", "latency(us)", "fps", "energy(uJ)")
	for _, r := range res.Rows {
		fmt.Fprintf(w, "%-22s %-12s %12.1f %10.0f %12.1f\n", r.Device, r.Model, r.LatencyUS, r.FPS, r.EnergyUJ)
	}
	fmt.Fprintf(w, "speedup vs GPU: %.2fx (paper C3: 3.5x)   vs CPU: %.2fx   energy reduction vs GPU: %.0f%% (paper C4: 40%%)\n",
		res.SpeedupVsGPU, res.SpeedupVsCPU, 100*res.EnergyReductionVsGPU)
}

// E5Row is one point of Figure 2: the accelerator design-space sweep.
type E5Row struct {
	Array       string
	PeakGOPS    float64
	LatencyUS   float64
	EnergyUJ    float64
	Utilization float64
	// EDP is the energy-delay product (uJ·us), the design-point figure of
	// merit the sweep minimizes.
	EDP float64
}

// E5ArraySweep runs Figure 2: systolic array size vs latency/energy/EDP on
// the paper-scale generalist.
func E5ArraySweep() []E5Row {
	model := HWTeacherCfg()
	var rows []E5Row
	for _, n := range []int{8, 16, 32, 64, 128} {
		cfg := hwsim.DefaultAccel()
		cfg.Rows, cfg.Cols = n, n
		cfg.Name = fmt.Sprintf("%dx%d", n, n)
		r := hwsim.SimulateAccel(cfg, model)
		rows = append(rows, E5Row{
			Array:       cfg.Name,
			PeakGOPS:    cfg.PeakGOPS(),
			LatencyUS:   r.LatencyUS,
			EnergyUJ:    r.TotalUJ,
			Utilization: r.MeanUtilization,
			EDP:         r.TotalUJ * r.LatencyUS,
		})
	}
	return rows
}

// FprintE5 renders Figure 2's series.
func FprintE5(w io.Writer, rows []E5Row) {
	fmt.Fprintf(w, "E5 (Fig. 2) — systolic array design-space sweep (generalist)\n")
	fmt.Fprintf(w, "%-8s %10s %12s %12s %8s %14s\n", "array", "GOPS", "latency(us)", "energy(uJ)", "util", "EDP(uJ*us)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8s %10.0f %12.1f %12.1f %7.1f%% %14.0f\n",
			r.Array, r.PeakGOPS, r.LatencyUS, r.EnergyUJ, 100*r.Utilization, r.EDP)
	}
}

// E6Row is one component of Figure 3's energy breakdown.
type E6Row struct {
	Device    string
	Component string
	EnergyUJ  float64
	SharePct  float64
}

// E6EnergyBreakdown runs Figure 3: where the energy goes on the accelerator
// vs the GPU baseline, paper-scale generalist, batch=1.
func E6EnergyBreakdown() []E6Row {
	model := HWTeacherCfg()
	accel := hwsim.SimulateAccel(hwsim.DefaultAccel(), model)
	var compute, sram, dram float64
	for _, l := range accel.Layers {
		compute += l.ComputeUJ
		sram += l.SRAMUJ
		dram += l.DRAMUJ
	}
	vector := accel.DynamicUJ - compute - sram - dram
	gpu := hwsim.SimulateGPU(hwsim.DefaultGPU(), model, 1)
	var rows []E6Row
	add := func(dev, comp string, uj, total float64) {
		rows = append(rows, E6Row{Device: dev, Component: comp, EnergyUJ: uj, SharePct: 100 * uj / total})
	}
	add(accel.Device, "mac-array", compute, accel.TotalUJ)
	add(accel.Device, "vector-unit", vector, accel.TotalUJ)
	add(accel.Device, "sram", sram, accel.TotalUJ)
	add(accel.Device, "dram", dram, accel.TotalUJ)
	add(accel.Device, "static+host", accel.StaticUJ, accel.TotalUJ)
	add(gpu.Device, "dynamic", gpu.DynamicUJ, gpu.TotalUJ)
	add(gpu.Device, "idle/static", gpu.StaticUJ, gpu.TotalUJ)
	return rows
}

// FprintE6 renders Figure 3's series.
func FprintE6(w io.Writer, rows []E6Row) {
	fmt.Fprintf(w, "E6 (Fig. 3) — per-inference energy breakdown\n")
	fmt.Fprintf(w, "%-22s %-14s %12s %8s\n", "device", "component", "energy(uJ)", "share")
	for _, r := range rows {
		fmt.Fprintf(w, "%-22s %-14s %12.2f %7.1f%%\n", r.Device, r.Component, r.EnergyUJ, r.SharePct)
	}
}

// E3GPUBatchRow is the supplementary batch sweep showing why batch-1 edge
// inference favours the accelerator (GPU catches up with batching).
type E3GPUBatchRow struct {
	Batch         int
	PerImageUS    float64
	ThroughputFPS float64
}

// E3GPUBatchSweep sweeps GPU batch size on the generalist.
func E3GPUBatchSweep() []E3GPUBatchRow {
	model := HWTeacherCfg()
	gpu := hwsim.DefaultGPU()
	var rows []E3GPUBatchRow
	for _, b := range []int{1, 2, 4, 8, 16, 32} {
		r := hwsim.SimulateGPU(gpu, model, b)
		rows = append(rows, E3GPUBatchRow{Batch: b, PerImageUS: r.LatencyUS, ThroughputFPS: r.FPS})
	}
	return rows
}

// FprintE3Batch renders the batch sweep.
func FprintE3Batch(w io.Writer, rows []E3GPUBatchRow) {
	fmt.Fprintf(w, "E3 supplement — GPU batch sweep (generalist)\n")
	fmt.Fprintf(w, "%-8s %16s %16s\n", "batch", "per-image(us)", "throughput(fps)")
	for _, r := range rows {
		fmt.Fprintf(w, "%-8d %16.1f %16.0f\n", r.Batch, r.PerImageUS, r.ThroughputFPS)
	}
}

// LayerBreakdown returns the per-layer accelerator table for a model
// config; exposed for the itask-hwsim CLI.
func LayerBreakdown(cfg vit.Config) string {
	return hwsim.SimulateAccel(hwsim.DefaultAccel(), cfg).LayerTable()
}
