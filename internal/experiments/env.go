// Package experiments reproduces the paper's evaluation: every table and
// figure (reconstructed from the abstract's claims — see DESIGN.md §4) is a
// function from a trained Env to typed rows, shared by the benchmark
// harness (bench_test.go) and the itask-bench CLI so the numbers reported
// in EXPERIMENTS.md come from exactly one code path.
package experiments

import (
	"fmt"

	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/kg"
	"itask/internal/llm"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// Scale sets the data/training budget of the accuracy experiments.
// Hardware experiments (E3, E5, E6) are analytical and scale-free.
type Scale struct {
	Name          string
	TrainPerTask  int
	DistillSample int
	ValPerTask    int
	TeacherEpochs int
	DistillEpochs int
	FewShotKs     []int
	FewShotEpochs int
	// E9Samples are the target-task training-set sizes of the sample
	// efficiency study.
	E9Samples []int
}

// QuickScale finishes the full suite in about a minute; used by the
// benchmark harness and CI.
func QuickScale() Scale {
	return Scale{
		Name:          "quick",
		TrainPerTask:  48,
		DistillSample: 72,
		ValPerTask:    32,
		TeacherEpochs: 16,
		DistillEpochs: 16,
		FewShotKs:     []int{0, 1, 2, 4, 8},
		FewShotEpochs: 8,
		E9Samples:     []int{8, 16, 32, 64},
	}
}

// FullScale is the overnight setting for the numbers in EXPERIMENTS.md.
func FullScale() Scale {
	return Scale{
		Name:          "full",
		TrainPerTask:  160,
		DistillSample: 200,
		ValPerTask:    80,
		TeacherEpochs: 30,
		DistillEpochs: 30,
		FewShotKs:     []int{0, 1, 2, 4, 8, 16, 32},
		FewShotEpochs: 12,
		E9Samples:     []int{4, 8, 16, 32, 64, 128},
	}
}

// TeacherModelCfg is the trained generalist architecture used in the
// accuracy experiments (laptop-scale geometry).
func TeacherModelCfg() vit.Config {
	return vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2,
		Classes: int(scene.NumClasses),
	}
}

// StudentModelCfg is the distilled task-specific architecture.
func StudentModelCfg() vit.Config {
	return vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2,
		Classes: int(scene.NumClasses),
	}
}

// HWTeacherCfg is the paper-scale model geometry used for the hardware
// experiments (these need no training, so the full 8×8-grid ViT is used).
func HWTeacherCfg() vit.Config { return vit.TeacherConfig(int(scene.NumClasses)) }

// HWStudentCfg is the paper-scale student for hardware experiments.
func HWStudentCfg() vit.Config { return vit.StudentConfig(int(scene.NumClasses)) }

// Env holds every trained artifact the accuracy experiments share.
type Env struct {
	Scale   Scale
	Tasks   []dataset.Task
	Teacher *vit.Model
	// GenStudent is the multi-task generalist in the STUDENT architecture,
	// distilled from the teacher on the task mixture. Quant is its int8
	// deployment — the paper's "quantized version of the model", matched in
	// architecture to the task-specific students so the E1 comparison
	// isolates specialization + quantization rather than capacity.
	GenStudent *vit.Model
	Students   map[string]*vit.Model
	Quant      *quant.Model
	Graphs     map[string]*kg.Graph
	Priors     map[string][]float64
	Val        map[string]dataset.Set
	Gen        scene.GenConfig
	Th         eval.Thresholds
}

// BuildEnv trains the full iTask model zoo deterministically: the
// multi-task teacher, the int8 quantized generalist, one distilled student
// per standard task, per-task knowledge graphs, and validation sets.
func BuildEnv(s Scale) (*Env, error) {
	rng := tensor.NewRNG(20250704)
	env := &Env{
		Scale:    s,
		Tasks:    dataset.StandardTasks(),
		Students: map[string]*vit.Model{},
		Graphs:   map[string]*kg.Graph{},
		Priors:   map[string][]float64{},
		Val:      map[string]dataset.Set{},
		Gen:      scene.DefaultGenConfig(),
		Th:       eval.DefaultThresholds(),
	}

	// Knowledge graphs from the simulated LLM.
	gen := llm.New(llm.DefaultOptions())
	for _, task := range env.Tasks {
		g, err := gen.Generate(task.Name, task.Description)
		if err != nil {
			return nil, fmt.Errorf("experiments: KG for %s: %w", task.Name, err)
		}
		env.Graphs[task.Name] = g
		env.Priors[task.Name] = kg.ClassPriors(g, "task:"+task.Name)
	}

	// Teacher: multi-task supervised training.
	mixed := dataset.BuildMixed(env.Tasks, s.TrainPerTask, env.Gen, rng.Split())
	env.Teacher = vit.New(TeacherModelCfg(), rng.Split())
	tcfg := distill.DefaultTrainConfig()
	tcfg.Epochs = s.TeacherEpochs
	tcfg.Seed = rng.Uint64()
	if _, err := distill.Train(env.Teacher, mixed, tcfg); err != nil {
		return nil, fmt.Errorf("experiments: teacher: %w", err)
	}

	// Multi-task generalist in the student architecture, distilled from
	// the teacher on the same mixture, then deployed quantized.
	env.GenStudent = vit.New(StudentModelCfg(), rng.Split())
	gcfg := distill.DefaultDistillConfig()
	gcfg.Train.Epochs = s.DistillEpochs
	gcfg.Train.Seed = rng.Uint64()
	if _, err := distill.Distill(env.Teacher, env.GenStudent, mixed, gcfg); err != nil {
		return nil, fmt.Errorf("experiments: generalist distill: %w", err)
	}
	qm, err := quant.FromViT(env.GenStudent, quant.DefaultConfig())
	if err != nil {
		return nil, fmt.Errorf("experiments: quantize: %w", err)
	}
	env.Quant = qm

	// Per-task distilled students: distillation transfers the teacher's
	// representation, a short supervised fine-tune then specializes it on
	// the task ("optimized for high accuracy in defined tasks"), and the
	// KG priors condition the heads.
	for _, task := range env.Tasks {
		set := dataset.Build(task, s.DistillSample, env.Gen, rng.Split())
		student := vit.New(StudentModelCfg(), rng.Split())
		dcfg := distill.DefaultDistillConfig()
		dcfg.Train.Epochs = s.DistillEpochs
		dcfg.Train.Seed = rng.Uint64()
		if _, err := distill.Distill(env.Teacher, student, set, dcfg); err != nil {
			return nil, fmt.Errorf("experiments: distill %s: %w", task.Name, err)
		}
		ftcfg := distill.DefaultTrainConfig()
		ftcfg.Epochs = s.DistillEpochs
		ftcfg.LR = 1e-3
		ftcfg.Seed = rng.Uint64()
		if _, err := distill.Train(student, set, ftcfg); err != nil {
			return nil, fmt.Errorf("experiments: fine-tune %s: %w", task.Name, err)
		}
		if err := distill.ApplyClassPriors(student, env.Priors[task.Name], 0.5); err != nil {
			return nil, err
		}
		env.Students[task.Name] = student
	}

	// Validation sets.
	for _, task := range env.Tasks {
		env.Val[task.Name] = dataset.Build(task, s.ValPerTask, env.Gen, rng.Split())
	}
	return env, nil
}

// quantDetector wraps the quantized generalist as an eval.DetectFunc.
func (e *Env) quantDetector() eval.DetectFunc {
	return func(img *tensor.Tensor) []geom.Scored {
		return e.Quant.Detect(img, e.Th.Obj, e.Th.NMSIoU)
	}
}
