package experiments

import (
	"bytes"
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/quant"
	"itask/internal/tensor"
)

// E13Row is one point of the soft-error reliability study.
type E13Row struct {
	// RatePerBit is the independent flip probability per stored weight bit.
	RatePerBit float64
	// FlippedBits is the realized number of corrupted bits.
	FlippedBits int
	// MeanAcc is accuracy of the corrupted int8 generalist, mean over tasks.
	MeanAcc float64
	// DeltaVsClean is MeanAcc minus the fault-free accuracy.
	DeltaVsClean float64
}

// E13FaultInjection measures how the deployed int8 generalist degrades
// under weight-memory soft errors — the SRAM-reliability analysis a DAC
// accelerator evaluation runs before choosing ECC/voltage margins.
func E13FaultInjection(env *Env, rates []float64) ([]E13Row, error) {
	// Pristine serialized copy to clone from.
	var pristine bytes.Buffer
	if err := env.Quant.Save(&pristine); err != nil {
		return nil, err
	}
	meanAcc := func(qm *quant.Model) float64 {
		df := eval.DetectFunc(func(img *tensor.Tensor) []geom.Scored {
			return qm.Detect(img, env.Th.Obj, env.Th.NMSIoU)
		})
		var sum float64
		for _, task := range env.Tasks {
			sum += eval.Run(df, env.Val[task.Name], dataset.ClassInts(task.Classes), env.Th).Accuracy
		}
		return sum / float64(len(env.Tasks))
	}
	clean := meanAcc(env.Quant)

	var rows []E13Row
	for _, rate := range rates {
		qm, err := quant.Load(bytes.NewReader(pristine.Bytes()))
		if err != nil {
			return nil, err
		}
		flips, err := quant.InjectBitFlips(qm, rate, 97)
		if err != nil {
			return nil, err
		}
		acc := meanAcc(qm)
		rows = append(rows, E13Row{
			RatePerBit:   rate,
			FlippedBits:  flips,
			MeanAcc:      acc,
			DeltaVsClean: acc - clean,
		})
	}
	return rows, nil
}

// FprintE13 renders the reliability series.
func FprintE13(w io.Writer, rows []E13Row) {
	fmt.Fprintf(w, "E13 — weight-SRAM soft-error injection (int8 generalist, mean over tasks)\n")
	fmt.Fprintf(w, "%-12s %12s %10s %12s\n", "rate/bit", "bits flipped", "mean acc", "vs clean")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12.0e %12d %9.1f%% %+11.1f%%\n",
			r.RatePerBit, r.FlippedBits, 100*r.MeanAcc, 100*r.DeltaVsClean)
	}
}
