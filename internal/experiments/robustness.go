package experiments

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// vitObject converts a scene ground truth to the dataset representation.
func vitObject(gt scene.GroundTruth) vit.Object {
	return vit.Object{Box: gt.Box, Class: int(gt.Class)}
}

// E10Row is one point of the robustness study: accuracy under increased
// sensor noise for the float generalist and its int8/int4 deployments.
type E10Row struct {
	// NoiseScale multiplies each domain's nominal pixel-noise std.
	NoiseScale float64
	FloatAcc   float64
	Int8Acc    float64
	Int4Acc    float64
}

// E10NoiseRobustness evaluates the generalist across degraded imaging
// conditions — the "extreme environments" framing of edge sensing papers.
// All models are evaluated on identical noisy scenes (same seeds).
func E10NoiseRobustness(env *Env, scales []float64) ([]E10Row, error) {
	int8Model := env.Quant
	int4Model, err := quant.FromViT(env.GenStudent, quant.Config{Bits: 4, PerChannel: true})
	if err != nil {
		return nil, err
	}
	wrap := func(qm *quant.Model) eval.DetectFunc {
		return func(img *tensor.Tensor) []geom.Scored {
			return qm.Detect(img, env.Th.Obj, env.Th.NMSIoU)
		}
	}
	var rows []E10Row
	for _, s := range scales {
		if s < 0 {
			return nil, fmt.Errorf("experiments: negative noise scale %v", s)
		}
		var fAcc, q8Acc, q4Acc float64
		for _, task := range env.Tasks {
			gen := env.Gen
			dom := scene.GetDomain(task.Domain)
			// Scale the domain's noise by regenerating scenes with a
			// modified domain descriptor.
			noisy := dom
			noisy.NoiseStd = dom.NoiseStd * float32(s)
			val := buildWithDomain(task, noisy, env.Scale.ValPerTask, gen)
			classes := dataset.ClassInts(task.Classes)
			fAcc += eval.Run(eval.DetectorOf(env.GenStudent, env.Th), val, classes, env.Th).Accuracy
			q8Acc += eval.Run(wrap(int8Model), val, classes, env.Th).Accuracy
			q4Acc += eval.Run(wrap(int4Model), val, classes, env.Th).Accuracy
		}
		n := float64(len(env.Tasks))
		rows = append(rows, E10Row{
			NoiseScale: s,
			FloatAcc:   fAcc / n,
			Int8Acc:    q8Acc / n,
			Int4Acc:    q4Acc / n,
		})
	}
	return rows, nil
}

// buildWithDomain generates a labeled set from an explicit (possibly
// modified) domain descriptor with a deterministic seed per task.
func buildWithDomain(task dataset.Task, dom scene.Domain, n int, gen scene.GenConfig) dataset.Set {
	rng := tensor.NewRNG(uint64(777000 + int(task.Domain)))
	s := dataset.Set{Name: task.Name + "-noisy"}
	for i := 0; i < n; i++ {
		sc := scene.Generate(dom, gen, rng)
		ex := dataset.Example{Image: sc.Image}
		for _, gt := range sc.Objects {
			ex.Objects = append(ex.Objects, vitObject(gt))
		}
		s.Examples = append(s.Examples, ex)
	}
	return s
}

// FprintE10 renders the robustness series.
func FprintE10(w io.Writer, rows []E10Row) {
	fmt.Fprintf(w, "E10 — accuracy under sensor-noise degradation (generalist, mean over tasks)\n")
	fmt.Fprintf(w, "%-12s %10s %10s %10s\n", "noise scale", "float32", "int8", "int4")
	for _, r := range rows {
		fmt.Fprintf(w, "%-12.1f %9.1f%% %9.1f%% %9.1f%%\n",
			r.NoiseScale, 100*r.FloatAcc, 100*r.Int8Acc, 100*r.Int4Acc)
	}
}
