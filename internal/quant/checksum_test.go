package quant

import (
	"os"
	"path/filepath"
	"testing"
)

func TestQuantChecksumAndVerify(t *testing.T) {
	qm := serTestModel(t)
	path := filepath.Join(t.TempDir(), "g.itq8")
	sum, err := qm.SaveFileSum(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(sum) != sumLen {
		t.Fatalf("checksum %q length %d, want %d", sum, len(sum), sumLen)
	}
	mem, err := qm.Checksum()
	if err != nil || mem != sum {
		t.Fatalf("Checksum() = %q, %v; SaveFileSum = %q", mem, err, sum)
	}
	loaded, err := LoadFileVerify(path, sum)
	if err != nil {
		t.Fatalf("verify with correct sum: %v", err)
	}
	if got, err := loaded.Checksum(); err != nil || got != sum {
		t.Fatalf("loaded model hash %q, %v, want %q", got, err, sum)
	}
	if _, err := LoadFileVerify(path, "deadbeefdeadbeef"); err == nil {
		t.Fatal("mismatched checksum accepted")
	}
	// Flip one weight byte: still a structurally valid stream, but refused.
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)-1] ^= 0xff
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := LoadFileVerify(path, sum); err == nil {
		t.Fatal("corrupted artifact accepted")
	}
}
