// Package quant implements post-training quantization for the iTask ViT:
// the "quantized configuration" of the paper. Weights are quantized
// per-channel (or per-tensor) to 4/6/8-bit symmetric integers; activations
// are quantized dynamically per tensor with an asymmetric range. All GEMMs
// — including the attention score and context products — run in integer
// arithmetic with int32 accumulation, exactly the arithmetic the hardware
// accelerator model executes, so measured accuracy corresponds to the
// simulated silicon.
package quant

import (
	"fmt"
	"math"
	"sort"
)

// QParams describes one quantization mapping q = round(x/Scale) + Zero,
// clamped to the signed range of Bits bits.
type QParams struct {
	Scale float32
	Zero  int32
	Bits  int
}

// qRange returns the inclusive integer range for a signed Bits-bit value.
func qRange(bits int) (lo, hi int32) {
	if bits < 2 || bits > 8 {
		panic(fmt.Sprintf("quant: unsupported bit width %d", bits))
	}
	hi = int32(1)<<(bits-1) - 1
	return -hi - 1, hi
}

// SymmetricParams computes symmetric (zero-point-free) parameters covering
// [-absMax, absMax]. Used for weights.
func SymmetricParams(data []float32, bits int) QParams {
	_, hi := qRange(bits)
	var absMax float32
	for _, v := range data {
		if v < 0 {
			v = -v
		}
		if v > absMax {
			absMax = v
		}
	}
	if absMax == 0 {
		absMax = 1 // all-zero tensor: any scale works; avoid div by zero
	}
	return QParams{Scale: absMax / float32(hi), Zero: 0, Bits: bits}
}

// AsymmetricParams computes parameters covering [min, max] with a zero
// point. Used for activations (e.g. post-GELU distributions are skewed).
func AsymmetricParams(data []float32, bits int) QParams {
	lo, hi := qRange(bits)
	mn, mx := float32(0), float32(0) // ranges always include 0
	for _, v := range data {
		if v < mn {
			mn = v
		}
		if v > mx {
			mx = v
		}
	}
	if mx == mn {
		mx = mn + 1
	}
	scale := (mx - mn) / float32(int32(hi)-lo)
	zero := int32(math.Round(float64(lo) - float64(mn)/float64(scale)))
	if zero < lo {
		zero = lo
	}
	if zero > hi {
		zero = hi
	}
	return QParams{Scale: scale, Zero: zero, Bits: bits}
}

// PercentileParams is AsymmetricParams over a clipped range that discards
// the top/bottom (1-pct)/2 mass, robust to activation outliers.
// pct must be in (0,1].
func PercentileParams(data []float32, bits int, pct float64) QParams {
	if pct <= 0 || pct > 1 {
		panic(fmt.Sprintf("quant: percentile %v outside (0,1]", pct))
	}
	if pct == 1 || len(data) < 8 {
		return AsymmetricParams(data, bits)
	}
	sorted := append([]float32(nil), data...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	k := int(float64(len(sorted)) * (1 - pct) / 2)
	clipped := sorted[k : len(sorted)-k]
	return AsymmetricParams(clipped, bits)
}

// Quantize maps x to its integer representation under qp.
func (qp QParams) Quantize(x float32) int8 {
	lo, hi := qRange(qp.Bits)
	q := int32(math.Round(float64(x)/float64(qp.Scale))) + qp.Zero
	if q < lo {
		q = lo
	}
	if q > hi {
		q = hi
	}
	return int8(q)
}

// Dequantize maps an integer representation back to float.
func (qp QParams) Dequantize(q int8) float32 {
	return float32(int32(q)-qp.Zero) * qp.Scale
}

// QuantizeSlice quantizes src into dst (must be same length).
func (qp QParams) QuantizeSlice(dst []int8, src []float32) {
	if len(dst) != len(src) {
		panic("quant: QuantizeSlice length mismatch")
	}
	lo, hi := qRange(qp.Bits)
	inv := 1 / float64(qp.Scale)
	for i, v := range src {
		q := int32(math.Round(float64(v)*inv)) + qp.Zero
		if q < lo {
			q = lo
		}
		if q > hi {
			q = hi
		}
		dst[i] = int8(q)
	}
}

// MaxAbsError returns the worst-case round-trip error bound for qp:
// half a scale step (plus clipping, which this bound excludes).
func (qp QParams) MaxAbsError() float32 { return qp.Scale / 2 }
