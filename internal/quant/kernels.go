package quant

import (
	"fmt"
	"sync"

	"itask/internal/kernels"
	"itask/internal/tensor"
)

// QWeight is a quantized weight matrix in (out,in) layout: symmetric
// per-channel (per output row) or per-tensor integer codes plus scales.
type QWeight struct {
	Q       []int8    // len Out*In
	Scales  []float32 // len Out (per-channel) or len 1 (per-tensor)
	RowSums []int32   // Σ_k Q[o][k], precomputed for zero-point correction
	Out, In int
	Bits    int
}

// QuantizeWeight quantizes a float (out,in) matrix.
func QuantizeWeight(w *tensor.Tensor, bits int, perChannel bool) QWeight {
	if w.Dims() != 2 {
		panic(fmt.Sprintf("quant: weight must be a matrix, got %v", w.Shape))
	}
	out, in := w.Shape[0], w.Shape[1]
	qw := QWeight{
		Q:       make([]int8, out*in),
		RowSums: make([]int32, out),
		Out:     out, In: in, Bits: bits,
	}
	if perChannel {
		qw.Scales = make([]float32, out)
	} else {
		qw.Scales = make([]float32, 1)
	}
	quantizeWeightInto(&qw, w.Data, perChannel)
	return qw
}

// quantizeWeightInto fills a pre-sized QWeight from float data — the
// buffer-reusing core of QuantizeWeight, also used by the attention path to
// quantize per-head key/value blocks into pooled scratch.
func quantizeWeightInto(qw *QWeight, data []float32, perChannel bool) {
	out, in := qw.Out, qw.In
	if perChannel {
		for o := 0; o < out; o++ {
			row := data[o*in : (o+1)*in]
			qp := SymmetricParams(row, qw.Bits)
			qw.Scales[o] = qp.Scale
			qp.QuantizeSlice(qw.Q[o*in:(o+1)*in], row)
		}
	} else {
		qp := SymmetricParams(data, qw.Bits)
		qw.Scales[0] = qp.Scale
		qp.QuantizeSlice(qw.Q, data)
	}
	for o := 0; o < out; o++ {
		var s int32
		for _, q := range qw.Q[o*in : (o+1)*in] {
			s += int32(q)
		}
		qw.RowSums[o] = s
	}
}

// scale returns the dequantization scale for output channel o.
func (w QWeight) scale(o int) float32 {
	if len(w.Scales) == 1 {
		return w.Scales[0]
	}
	return w.Scales[o]
}

// Dequantize reconstructs the float weight matrix (for error analysis).
func (w QWeight) Dequantize() *tensor.Tensor {
	out := tensor.New(w.Out, w.In)
	for o := 0; o < w.Out; o++ {
		s := w.scale(o)
		for k := 0; k < w.In; k++ {
			out.Data[o*w.In+k] = float32(w.Q[o*w.In+k]) * s
		}
	}
	return out
}

// QActivation is a dynamically quantized activation matrix (rows,cols) with
// one asymmetric parameter set for the whole tensor.
type QActivation struct {
	Q          []int8
	QP         QParams
	Rows, Cols int
}

// QuantizeActivation quantizes a float activation with per-tensor
// asymmetric parameters at the given bit width.
func QuantizeActivation(x *tensor.Tensor, bits int) QActivation {
	var qa QActivation
	QuantizeActivationInto(&qa, x, bits)
	return qa
}

// QuantizeActivationInto quantizes x into qa, reusing qa.Q when it has
// capacity — the pre-quantized-activation path the serving forward uses so
// steady-state inference recycles its int8 staging buffers.
func QuantizeActivationInto(qa *QActivation, x *tensor.Tensor, bits int) {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("quant: activation must be a matrix, got %v", x.Shape))
	}
	n := x.Size()
	if cap(qa.Q) < n {
		qa.Q = make([]int8, n)
	}
	qa.Q = qa.Q[:n]
	qa.QP = AsymmetricParams(x.Data, bits)
	qa.Rows, qa.Cols = x.Shape[0], x.Shape[1]
	qa.QP.QuantizeSlice(qa.Q, x.Data)
}

// gemmParallelThreshold is the MAC count above which the integer GEMM is
// tiled across the shared worker pool.
const gemmParallelThreshold = 1 << 15

// GEMM computes out = dequant(qa @ qwᵀ) + bias, with int32 accumulation:
//
//	out[i][o] = sa*sw[o] * (Σ_k qa[i][k]*qw[o][k] − za*rowSum[o]) + bias[o]
//
// bias may be nil. out must be (Rows, Out). The row dimension is tiled
// across the persistent worker pool (falling back to column tiles for
// single-row activations), and the inner product runs on the unrolled
// widening int8 dot micro-kernel.
func GEMM(qa QActivation, qw QWeight, bias []float32, out *tensor.Tensor) {
	if qa.Cols != qw.In {
		panic(fmt.Sprintf("quant: GEMM inner dim %d vs %d", qa.Cols, qw.In))
	}
	if out.Dims() != 2 || out.Shape[0] != qa.Rows || out.Shape[1] != qw.Out {
		panic(fmt.Sprintf("quant: GEMM out shape %v, want (%d,%d)", out.Shape, qa.Rows, qw.Out))
	}
	if bias != nil && len(bias) != qw.Out {
		panic("quant: GEMM bias length mismatch")
	}
	work := qa.Rows * qa.Cols * qw.Out
	switch {
	case work < gemmParallelThreshold:
		gemmRows(qa, qw, bias, out, 0, qa.Rows)
	case qa.Rows >= 4:
		grain := (qa.Rows/(2*tensor.Workers()) + 3) &^ 3
		if grain < 4 {
			grain = 4
		}
		tensor.ParallelFor(qa.Rows, grain, func(lo, hi int) {
			gemmRows(qa, qw, bias, out, lo, hi)
		})
	default:
		// Tall-thin activations (single image, few tokens): tile the output
		// channels instead so the pool still has work to steal.
		grain := (qw.Out/(2*tensor.Workers()) + 3) &^ 3
		if grain < 4 {
			grain = 4
		}
		tensor.ParallelFor(qw.Out, grain, func(lo, hi int) {
			gemmCols(qa, qw, bias, out, lo, hi)
		})
	}
}

// gemmRows computes activation rows [lo,hi) of the integer GEMM.
func gemmRows(qa QActivation, qw QWeight, bias []float32, out *tensor.Tensor, lo, hi int) {
	k := qa.Cols
	sa := qa.QP.Scale
	za := qa.QP.Zero
	for i := lo; i < hi; i++ {
		arow := qa.Q[i*k : (i+1)*k]
		orow := out.Data[i*qw.Out : (i+1)*qw.Out]
		for o := 0; o < qw.Out; o++ {
			acc := kernels.DotI8(arow, qw.Q[o*k:(o+1)*k])
			acc -= za * qw.RowSums[o]
			v := sa * qw.scale(o) * float32(acc)
			if bias != nil {
				v += bias[o]
			}
			orow[o] = v
		}
	}
}

// gemmCols computes output channels [lo,hi) of the integer GEMM for every
// activation row.
func gemmCols(qa QActivation, qw QWeight, bias []float32, out *tensor.Tensor, lo, hi int) {
	k := qa.Cols
	sa := qa.QP.Scale
	za := qa.QP.Zero
	for i := 0; i < qa.Rows; i++ {
		arow := qa.Q[i*k : (i+1)*k]
		orow := out.Data[i*qw.Out : (i+1)*qw.Out]
		for o := lo; o < hi; o++ {
			acc := kernels.DotI8(arow, qw.Q[o*k:(o+1)*k])
			acc -= za * qw.RowSums[o]
			v := sa * qw.scale(o) * float32(acc)
			if bias != nil {
				v += bias[o]
			}
			orow[o] = v
		}
	}
}

// Linear runs a full dynamically-quantized linear layer: quantize x, integer
// GEMM against the prequantized weight, dequantize, add bias.
func Linear(x *tensor.Tensor, qw QWeight, bias []float32, actBits int) *tensor.Tensor {
	out := tensor.New(x.Shape[0], qw.Out)
	LinearInto(out, x, qw, bias, actBits)
	return out
}

// LinearInto is Linear writing into a caller-provided (rows, Out) tensor,
// staging the quantized activation in a pooled int8 buffer so the
// steady-state path performs no per-call allocation.
func LinearInto(out, x *tensor.Tensor, qw QWeight, bias []float32, actBits int) {
	qa := getQA(x.Size())
	QuantizeActivationInto(qa, x, actBits)
	GEMM(*qa, qw, bias, out)
	putQA(qa)
}

// LinearWithQP is Linear with precomputed (statically calibrated)
// activation parameters instead of dynamic per-tensor range estimation —
// the cheap-hardware path where no runtime min/max scan is needed.
func LinearWithQP(x *tensor.Tensor, qp QParams, qw QWeight, bias []float32) *tensor.Tensor {
	out := tensor.New(x.Shape[0], qw.Out)
	LinearWithQPInto(out, x, qp, qw, bias)
	return out
}

// LinearWithQPInto is LinearWithQP writing into a caller-provided tensor
// with pooled int8 staging.
func LinearWithQPInto(out, x *tensor.Tensor, qp QParams, qw QWeight, bias []float32) {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("quant: LinearWithQP activation must be a matrix, got %v", x.Shape))
	}
	qa := getQA(x.Size())
	qa.QP = qp
	qa.Rows, qa.Cols = x.Shape[0], x.Shape[1]
	qa.Q = qa.Q[:x.Size()]
	qp.QuantizeSlice(qa.Q, x.Data)
	GEMM(*qa, qw, bias, out)
	putQA(qa)
}

// qaPool recycles QActivation staging structs (with their int8 buffers)
// across forwards; see the arena discipline note in tensor/arena.go.
var qaPool = sync.Pool{New: func() any { return new(QActivation) }}

func getQA(n int) *QActivation {
	qa := qaPool.Get().(*QActivation)
	if cap(qa.Q) < n {
		qa.Q = make([]int8, n)
	}
	qa.Q = qa.Q[:n]
	return qa
}

func putQA(qa *QActivation) { qaPool.Put(qa) }

// qwPool recycles QWeight scratch for the attention path, which quantizes
// per-head key/value blocks on the fly each forward.
var qwPool = sync.Pool{New: func() any { return new(QWeight) }}

// getQW returns a pooled QWeight resized for an (out,in) matrix; its contents
// are arbitrary until quantizeWeightInto fills them.
func getQW(out, in, bits int, perChannel bool) *QWeight {
	qw := qwPool.Get().(*QWeight)
	n := out * in
	if cap(qw.Q) < n {
		qw.Q = make([]int8, n)
	}
	qw.Q = qw.Q[:n]
	if cap(qw.RowSums) < out {
		qw.RowSums = make([]int32, out)
	}
	qw.RowSums = qw.RowSums[:out]
	sc := 1
	if perChannel {
		sc = out
	}
	if cap(qw.Scales) < sc {
		qw.Scales = make([]float32, sc)
	}
	qw.Scales = qw.Scales[:sc]
	qw.Out, qw.In, qw.Bits = out, in, bits
	return qw
}

func putQW(qws ...*QWeight) {
	for _, q := range qws {
		qwPool.Put(q)
	}
}
