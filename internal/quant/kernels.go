package quant

import (
	"fmt"

	"itask/internal/tensor"
)

// QWeight is a quantized weight matrix in (out,in) layout: symmetric
// per-channel (per output row) or per-tensor integer codes plus scales.
type QWeight struct {
	Q       []int8    // len Out*In
	Scales  []float32 // len Out (per-channel) or len 1 (per-tensor)
	RowSums []int32   // Σ_k Q[o][k], precomputed for zero-point correction
	Out, In int
	Bits    int
}

// QuantizeWeight quantizes a float (out,in) matrix.
func QuantizeWeight(w *tensor.Tensor, bits int, perChannel bool) QWeight {
	if w.Dims() != 2 {
		panic(fmt.Sprintf("quant: weight must be a matrix, got %v", w.Shape))
	}
	out, in := w.Shape[0], w.Shape[1]
	qw := QWeight{
		Q:       make([]int8, out*in),
		RowSums: make([]int32, out),
		Out:     out, In: in, Bits: bits,
	}
	if perChannel {
		qw.Scales = make([]float32, out)
		for o := 0; o < out; o++ {
			row := w.Data[o*in : (o+1)*in]
			qp := SymmetricParams(row, bits)
			qw.Scales[o] = qp.Scale
			qp.QuantizeSlice(qw.Q[o*in:(o+1)*in], row)
		}
	} else {
		qp := SymmetricParams(w.Data, bits)
		qw.Scales = []float32{qp.Scale}
		qp.QuantizeSlice(qw.Q, w.Data)
	}
	for o := 0; o < out; o++ {
		var s int32
		for _, q := range qw.Q[o*in : (o+1)*in] {
			s += int32(q)
		}
		qw.RowSums[o] = s
	}
	return qw
}

// scale returns the dequantization scale for output channel o.
func (w QWeight) scale(o int) float32 {
	if len(w.Scales) == 1 {
		return w.Scales[0]
	}
	return w.Scales[o]
}

// Dequantize reconstructs the float weight matrix (for error analysis).
func (w QWeight) Dequantize() *tensor.Tensor {
	out := tensor.New(w.Out, w.In)
	for o := 0; o < w.Out; o++ {
		s := w.scale(o)
		for k := 0; k < w.In; k++ {
			out.Data[o*w.In+k] = float32(w.Q[o*w.In+k]) * s
		}
	}
	return out
}

// QActivation is a dynamically quantized activation matrix (rows,cols) with
// one asymmetric parameter set for the whole tensor.
type QActivation struct {
	Q          []int8
	QP         QParams
	Rows, Cols int
}

// QuantizeActivation quantizes a float activation with per-tensor
// asymmetric parameters at the given bit width.
func QuantizeActivation(x *tensor.Tensor, bits int) QActivation {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("quant: activation must be a matrix, got %v", x.Shape))
	}
	qa := QActivation{
		Q:    make([]int8, x.Size()),
		QP:   AsymmetricParams(x.Data, bits),
		Rows: x.Shape[0], Cols: x.Shape[1],
	}
	qa.QP.QuantizeSlice(qa.Q, x.Data)
	return qa
}

// GEMM computes out = dequant(qa @ qwᵀ) + bias, with int32 accumulation:
//
//	out[i][o] = sa*sw[o] * (Σ_k qa[i][k]*qw[o][k] − za*rowSum[o]) + bias[o]
//
// bias may be nil. out must be (Rows, Out).
func GEMM(qa QActivation, qw QWeight, bias []float32, out *tensor.Tensor) {
	if qa.Cols != qw.In {
		panic(fmt.Sprintf("quant: GEMM inner dim %d vs %d", qa.Cols, qw.In))
	}
	if out.Dims() != 2 || out.Shape[0] != qa.Rows || out.Shape[1] != qw.Out {
		panic(fmt.Sprintf("quant: GEMM out shape %v, want (%d,%d)", out.Shape, qa.Rows, qw.Out))
	}
	if bias != nil && len(bias) != qw.Out {
		panic("quant: GEMM bias length mismatch")
	}
	k := qa.Cols
	for i := 0; i < qa.Rows; i++ {
		arow := qa.Q[i*k : (i+1)*k]
		orow := out.Data[i*qw.Out : (i+1)*qw.Out]
		for o := 0; o < qw.Out; o++ {
			wrow := qw.Q[o*k : (o+1)*k]
			var acc int32
			for j, av := range arow {
				acc += int32(av) * int32(wrow[j])
			}
			acc -= qa.QP.Zero * qw.RowSums[o]
			v := qa.QP.Scale * qw.scale(o) * float32(acc)
			if bias != nil {
				v += bias[o]
			}
			orow[o] = v
		}
	}
}

// Linear runs a full dynamically-quantized linear layer: quantize x, integer
// GEMM against the prequantized weight, dequantize, add bias.
func Linear(x *tensor.Tensor, qw QWeight, bias []float32, actBits int) *tensor.Tensor {
	qa := QuantizeActivation(x, actBits)
	out := tensor.New(qa.Rows, qw.Out)
	GEMM(qa, qw, bias, out)
	return out
}

// LinearWithQP is Linear with precomputed (statically calibrated)
// activation parameters instead of dynamic per-tensor range estimation —
// the cheap-hardware path where no runtime min/max scan is needed.
func LinearWithQP(x *tensor.Tensor, qp QParams, qw QWeight, bias []float32) *tensor.Tensor {
	if x.Dims() != 2 {
		panic(fmt.Sprintf("quant: LinearWithQP activation must be a matrix, got %v", x.Shape))
	}
	qa := QActivation{Q: make([]int8, x.Size()), QP: qp, Rows: x.Shape[0], Cols: x.Shape[1]}
	qp.QuantizeSlice(qa.Q, x.Data)
	out := tensor.New(qa.Rows, qw.Out)
	GEMM(qa, qw, bias, out)
	return out
}
