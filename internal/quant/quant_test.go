package quant

import (
	"math"
	"testing"
	"testing/quick"

	"itask/internal/tensor"
	"itask/internal/vit"
)

func TestQRange(t *testing.T) {
	cases := map[int][2]int32{
		8: {-128, 127},
		6: {-32, 31},
		4: {-8, 7},
	}
	for bits, want := range cases {
		lo, hi := qRange(bits)
		if lo != want[0] || hi != want[1] {
			t.Errorf("qRange(%d) = %d,%d", bits, lo, hi)
		}
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("bits=1 should panic")
			}
		}()
		qRange(1)
	}()
}

func TestSymmetricRoundTripErrorBound(t *testing.T) {
	rng := tensor.NewRNG(1)
	f := func(seed uint8) bool {
		data := tensor.Randn(rng, 2, 64).Data
		for _, bits := range []int{4, 6, 8} {
			qp := SymmetricParams(data, bits)
			for _, v := range data {
				got := qp.Dequantize(qp.Quantize(v))
				if float64(abs32(got-v)) > float64(qp.Scale)/2+1e-6 {
					return false
				}
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 40}); err != nil {
		t.Error(err)
	}
}

func abs32(v float32) float32 {
	if v < 0 {
		return -v
	}
	return v
}

func TestAsymmetricRoundTripErrorBound(t *testing.T) {
	rng := tensor.NewRNG(2)
	// Skewed positive data (post-GELU-like).
	data := make([]float32, 256)
	for i := range data {
		v := float32(rng.Norm())
		if v < 0 {
			v *= 0.1
		}
		data[i] = v
	}
	for _, bits := range []int{4, 6, 8} {
		qp := AsymmetricParams(data, bits)
		for _, v := range data {
			got := qp.Dequantize(qp.Quantize(v))
			if abs32(got-v) > qp.Scale/2+1e-6 {
				t.Fatalf("bits=%d: |%v - %v| > scale/2=%v", bits, got, v, qp.Scale/2)
			}
		}
	}
}

func TestAsymmetricBeatsSymmetricOnSkewedData(t *testing.T) {
	rng := tensor.NewRNG(3)
	data := make([]float32, 512)
	for i := range data {
		data[i] = float32(rng.Float64()) * 4 // all in [0,4)
	}
	sym := SymmetricParams(data, 8)
	asym := AsymmetricParams(data, 8)
	if asym.Scale >= sym.Scale {
		t.Errorf("asymmetric scale %v should beat symmetric %v on one-sided data", asym.Scale, sym.Scale)
	}
}

func TestPercentileClipsOutliers(t *testing.T) {
	data := make([]float32, 1000)
	for i := range data {
		data[i] = float32(i%10) * 0.1
	}
	data[0] = 1000 // outlier
	full := AsymmetricParams(data, 8)
	clipped := PercentileParams(data, 8, 0.99)
	if clipped.Scale >= full.Scale {
		t.Errorf("percentile calibration should shrink scale: %v vs %v", clipped.Scale, full.Scale)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("pct=0 should panic")
			}
		}()
		PercentileParams(data, 8, 0)
	}()
}

func TestAllZeroTensor(t *testing.T) {
	data := make([]float32, 16)
	qp := SymmetricParams(data, 8)
	if qp.Scale <= 0 {
		t.Error("zero tensor must still get a positive scale")
	}
	if got := qp.Dequantize(qp.Quantize(0)); got != 0 {
		t.Errorf("0 round trips to %v", got)
	}
}

func TestQuantizeWeightPerChannel(t *testing.T) {
	rng := tensor.NewRNG(4)
	w := tensor.Randn(rng, 1, 6, 10)
	// Give one row a much larger magnitude.
	for k := 0; k < 10; k++ {
		w.Data[k] *= 50
	}
	pc := QuantizeWeight(w, 8, true)
	pt := QuantizeWeight(w, 8, false)
	if len(pc.Scales) != 6 || len(pt.Scales) != 1 {
		t.Fatalf("scales: pc=%d pt=%d", len(pc.Scales), len(pt.Scales))
	}
	// Per-channel reconstruction must be better on the small rows.
	errPC := tensor.Sub(pc.Dequantize(), w).Norm2()
	errPT := tensor.Sub(pt.Dequantize(), w).Norm2()
	if errPC >= errPT {
		t.Errorf("per-channel error %v should beat per-tensor %v", errPC, errPT)
	}
	// Row sums correct.
	for o := 0; o < 6; o++ {
		var s int32
		for k := 0; k < 10; k++ {
			s += int32(pc.Q[o*10+k])
		}
		if s != pc.RowSums[o] {
			t.Fatalf("row sum %d wrong", o)
		}
	}
}

func TestGEMMMatchesFloatReference(t *testing.T) {
	rng := tensor.NewRNG(5)
	x := tensor.Randn(rng, 1, 7, 12)
	w := tensor.Randn(rng, 0.5, 9, 12)
	bias := make([]float32, 9)
	for i := range bias {
		bias[i] = float32(rng.Norm())
	}
	want := tensor.MatMulT(x, w)
	want.AddRowVector(tensor.FromSlice(bias, 9))

	qw := QuantizeWeight(w, 8, true)
	got := Linear(x, qw, bias, 8)
	// int8 dynamic quantization: expect close but not exact.
	maxErr := float32(0)
	for i := range got.Data {
		if e := abs32(got.Data[i] - want.Data[i]); e > maxErr {
			maxErr = e
		}
	}
	scaleOfInputs := x.AbsMax() * w.AbsMax()
	if maxErr > scaleOfInputs*0.1 {
		t.Errorf("int8 GEMM error %v too large (ref scale %v)", maxErr, scaleOfInputs)
	}
}

func TestGEMMLowerBitsHigherError(t *testing.T) {
	rng := tensor.NewRNG(6)
	x := tensor.Randn(rng, 1, 8, 16)
	w := tensor.Randn(rng, 0.5, 8, 16)
	want := tensor.MatMulT(x, w)
	var errs []float32
	for _, bits := range []int{8, 6, 4} {
		qw := QuantizeWeight(w, bits, true)
		got := Linear(x, qw, nil, bits)
		var sum float64
		for i := range got.Data {
			d := float64(got.Data[i] - want.Data[i])
			sum += d * d
		}
		errs = append(errs, float32(math.Sqrt(sum)))
	}
	if !(errs[0] < errs[1] && errs[1] < errs[2]) {
		t.Errorf("quantization error should grow as bits shrink: %v", errs)
	}
}

func TestGEMMValidation(t *testing.T) {
	x := tensor.New(2, 3)
	qw := QuantizeWeight(tensor.New(4, 5), 8, true)
	defer func() {
		if recover() == nil {
			t.Error("inner-dim mismatch should panic")
		}
	}()
	Linear(x, qw, nil, 8)
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatal(err)
	}
	for _, bad := range []Config{{Bits: 3}, {Bits: 16}, {Bits: 8, ActBits: 5}} {
		if err := bad.Validate(); err == nil {
			t.Errorf("config %+v should fail", bad)
		}
	}
	if (Config{Bits: 8}).actBits() != 8 {
		t.Error("ActBits should default to Bits")
	}
}

func TestFromViTStructure(t *testing.T) {
	cfg := vit.TinyConfig(4)
	m := vit.New(cfg, tensor.NewRNG(7))
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	if len(qm.blocks) != cfg.Depth {
		t.Errorf("blocks = %d, want %d", len(qm.blocks), cfg.Depth)
	}
	if qm.WeightBytes() <= 0 {
		t.Error("weight bytes must be positive")
	}
	// int8 model must be roughly 4x smaller than float32 params.
	floatBytes := m.NumParams() * 4
	if qm.WeightBytes() >= floatBytes/2 {
		t.Errorf("quantized %dB vs float %dB: not compressed", qm.WeightBytes(), floatBytes)
	}
}

// TestQuantizedCloseToFloat is the central fidelity test: int8 inference
// must track the float model closely; int4 must degrade more.
func TestQuantizedCloseToFloat(t *testing.T) {
	cfg := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: 5,
	}
	rng := tensor.NewRNG(8)
	m := vit.New(cfg, rng)
	img := tensor.Randn(rng, 0.5, 3, 32, 32)
	patches := vit.Patchify(cfg, []*tensor.Tensor{img})
	ref := m.DetHead(m.Forward(patches, false), false)

	errFor := func(bits int) float64 {
		qm, err := FromViT(m, Config{Bits: bits, PerChannel: true})
		if err != nil {
			t.Fatal(err)
		}
		out := qm.DetHead(qm.Forward(patches))
		var sum float64
		for i := range out.Data {
			d := float64(out.Data[i] - ref.Data[i])
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(out.Data)))
	}
	e8 := errFor(8)
	e4 := errFor(4)
	refScale := float64(ref.Norm2()) / math.Sqrt(float64(ref.Size()))
	if e8 > 0.25*refScale {
		t.Errorf("int8 RMS error %v too large vs signal %v", e8, refScale)
	}
	if e4 <= e8 {
		t.Errorf("int4 error %v should exceed int8 error %v", e4, e8)
	}
}

func TestQuantizedDeterministic(t *testing.T) {
	cfg := vit.TinyConfig(3)
	m := vit.New(cfg, tensor.NewRNG(9))
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.Randn(tensor.NewRNG(10), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	d1 := qm.Detect(img, 0.1, 0.5)
	d2 := qm.Detect(img, 0.1, 0.5)
	if len(d1) != len(d2) {
		t.Fatal("quantized inference not deterministic")
	}
	for i := range d1 {
		if d1[i] != d2[i] {
			t.Fatal("quantized detections differ between runs")
		}
	}
}

func TestApproxVectorCloseToExact(t *testing.T) {
	cfg := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: 5,
	}
	m := vit.New(cfg, tensor.NewRNG(21))
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.Randn(tensor.NewRNG(22), 0.5, 3, 32, 32)
	patches := vit.Patchify(cfg, []*tensor.Tensor{img})
	exact := qm.DetHead(qm.Forward(patches))
	qm.SetApproxVector(true)
	approxOut := qm.DetHead(qm.Forward(patches))
	qm.SetApproxVector(false)
	back := qm.DetHead(qm.Forward(patches))

	var diff, sig float64
	for i := range exact.Data {
		d := float64(approxOut.Data[i] - exact.Data[i])
		diff += d * d
		sig += float64(exact.Data[i]) * float64(exact.Data[i])
	}
	if math.Sqrt(diff) > 0.2*math.Sqrt(sig) {
		t.Errorf("approximate vector unit deviates too much: %.4f vs %.4f",
			math.Sqrt(diff), math.Sqrt(sig))
	}
	if !back.Equal(exact) {
		t.Error("toggling approx off did not restore exact inference")
	}
}

func TestClsHeadShape(t *testing.T) {
	cfg := vit.TinyConfig(6)
	m := vit.New(cfg, tensor.NewRNG(11))
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	imgs := []*tensor.Tensor{
		tensor.Randn(tensor.NewRNG(1), 0.5, 3, cfg.ImageSize, cfg.ImageSize),
		tensor.Randn(tensor.NewRNG(2), 0.5, 3, cfg.ImageSize, cfg.ImageSize),
	}
	feats := qm.Forward(vit.Patchify(cfg, imgs))
	cls := qm.ClsHead(feats)
	if cls.Shape[0] != 2 || cls.Shape[1] != 6 {
		t.Errorf("cls shape %v", cls.Shape)
	}
}
