package quant

import (
	"bytes"
	"testing"

	"itask/internal/tensor"
	"itask/internal/vit"
)

func serTestModel(t *testing.T) *Model {
	t.Helper()
	cfg := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: 5,
	}
	m := vit.New(cfg, tensor.NewRNG(1))
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	return qm
}

func TestQuantSaveLoadRoundTrip(t *testing.T) {
	qm := serTestModel(t)
	var buf bytes.Buffer
	if err := qm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	// Bit-identical inference.
	img := tensor.Randn(tensor.NewRNG(2), 0.5, 3, 32, 32)
	patches := vit.Patchify(qm.Cfg, []*tensor.Tensor{img})
	a := qm.DetHead(qm.Forward(patches))
	b := loaded.DetHead(loaded.Forward(patches))
	if !a.Equal(b) {
		t.Fatal("loaded model inference differs")
	}
	if loaded.WeightBytes() != qm.WeightBytes() {
		t.Errorf("weight bytes %d vs %d", loaded.WeightBytes(), qm.WeightBytes())
	}
	if loaded.QC != qm.QC {
		t.Errorf("scheme %+v vs %+v", loaded.QC, qm.QC)
	}
}

func TestQuantSaveLoadFile(t *testing.T) {
	qm := serTestModel(t)
	path := t.TempDir() + "/model.itq8"
	if err := qm.SaveFile(path); err != nil {
		t.Fatal(err)
	}
	loaded, err := LoadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Cfg != qm.Cfg {
		t.Error("config lost in file round trip")
	}
}

func TestQuantLoadRejectsGarbage(t *testing.T) {
	for name, data := range map[string][]byte{
		"empty":     {},
		"bad magic": []byte("NOPE1234567890"),
		"truncated": func() []byte {
			qm := serTestModel(t)
			var buf bytes.Buffer
			if err := qm.Save(&buf); err != nil {
				t.Fatal(err)
			}
			return buf.Bytes()[:buf.Len()/2]
		}(),
	} {
		if _, err := Load(bytes.NewReader(data)); err == nil {
			t.Errorf("%s: expected load error", name)
		}
	}
}

func TestQuantLoadRejectsCorruptDimensions(t *testing.T) {
	qm := serTestModel(t)
	var buf bytes.Buffer
	if err := qm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	// Corrupt the image-size field (first config u32 after magic+version).
	data[8] = 0
	data[9] = 0
	data[10] = 0
	data[11] = 0
	if _, err := Load(bytes.NewReader(data)); err == nil {
		t.Error("corrupt geometry should fail validation")
	}
}

func TestQuantCheckpointCompact(t *testing.T) {
	qm := serTestModel(t)
	var buf bytes.Buffer
	if err := qm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	// The int8 checkpoint must be far smaller than a float32 dump of the
	// same parameter count.
	floatBytes := 4 * len(qm.embed.w.Q) // very rough lower bound reference
	_ = floatBytes
	if buf.Len() > qm.WeightBytes()*3 {
		t.Errorf("checkpoint %d bytes vs weight footprint %d: too much overhead", buf.Len(), qm.WeightBytes())
	}
}
