package quant

import (
	"crypto/sha256"
	"encoding/hex"
	"fmt"
	"io"
	"os"
)

// sumLen matches vit's truncated digest width so manifests are uniform.
const sumLen = 16

// Checksum hashes the quantized model's canonical serialized form.
func (qm *Model) Checksum() (string, error) {
	h := sha256.New()
	if err := qm.Save(h); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:sumLen], nil
}

// SaveFileSum writes the quantized model to path and returns the content
// checksum of the written bytes.
func (qm *Model) SaveFileSum(path string) (string, error) {
	f, err := os.Create(path)
	if err != nil {
		return "", err
	}
	h := sha256.New()
	if err := qm.Save(io.MultiWriter(f, h)); err != nil {
		f.Close()
		return "", err
	}
	if err := f.Close(); err != nil {
		return "", err
	}
	return hex.EncodeToString(h.Sum(nil))[:sumLen], nil
}

// LoadFileVerify reads a quantized model from path, hashing the stream while
// decoding, and refuses the artifact when the digest differs from sum.
func LoadFileVerify(path, sum string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	h := sha256.New()
	qm, err := Load(io.TeeReader(f, h))
	if err != nil {
		return nil, err
	}
	if _, err := io.Copy(h, f); err != nil {
		return nil, err
	}
	got := hex.EncodeToString(h.Sum(nil))[:sumLen]
	if got != sum {
		return nil, fmt.Errorf("quant: artifact %s checksum %s, manifest says %s", path, got, sum)
	}
	return qm, nil
}
