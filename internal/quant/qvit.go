package quant

import (
	"fmt"
	"math"

	"itask/internal/approx"
	"itask/internal/geom"
	"itask/internal/nn"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// Config selects the quantization scheme.
type Config struct {
	// Bits is the weight bit width (4, 6 or 8).
	Bits int
	// ActBits is the activation bit width; 0 means same as Bits.
	ActBits int
	// PerChannel enables per-output-channel weight scales (vs per-tensor).
	PerChannel bool
}

// DefaultConfig is the int8 per-channel scheme used for the paper's
// quantized configuration.
func DefaultConfig() Config { return Config{Bits: 8, PerChannel: true} }

// Validate checks the scheme.
func (c Config) Validate() error {
	check := func(b int) error {
		switch b {
		case 4, 6, 8:
			return nil
		}
		return fmt.Errorf("quant: unsupported bit width %d", b)
	}
	if err := check(c.Bits); err != nil {
		return err
	}
	if c.ActBits != 0 {
		return check(c.ActBits)
	}
	return nil
}

func (c Config) actBits() int {
	if c.ActBits == 0 {
		return c.Bits
	}
	return c.ActBits
}

// qLinear is a quantized linear layer.
type qLinear struct {
	w    QWeight
	bias []float32
}

func quantLinear(l *nn.Linear, qc Config) qLinear {
	ql := qLinear{w: QuantizeWeight(l.Weight.W, qc.Bits, qc.PerChannel)}
	if l.Bias != nil {
		ql.bias = append([]float32(nil), l.Bias.W.Data...)
	}
	return ql
}

func (l qLinear) forward(x *tensor.Tensor, actBits int) *tensor.Tensor {
	return Linear(x, l.w, l.bias, actBits)
}

// forwardWith uses static parameters when qp is non-nil, else dynamic.
func (l qLinear) forwardWith(x *tensor.Tensor, qp *QParams, actBits int) *tensor.Tensor {
	out := tensor.New(x.Shape[0], l.w.Out)
	l.forwardWithInto(out, x, qp, actBits)
	return out
}

// forwardWithInto is forwardWith writing into a caller-provided (rows, Out)
// tensor, so trunk intermediates can live in the scratch arena.
func (l qLinear) forwardWithInto(out, x *tensor.Tensor, qp *QParams, actBits int) {
	if qp != nil {
		LinearWithQPInto(out, x, *qp, l.w, l.bias)
		return
	}
	LinearInto(out, x, l.w, l.bias, actBits)
}

// lnParams is a float LayerNorm (normalization stays in float on the
// accelerator's vector unit, as in production int8 transformer stacks).
type lnParams struct {
	gamma, beta []float32
	eps         float32
}

func fromLayerNorm(ln *nn.LayerNorm) lnParams {
	return lnParams{
		gamma: append([]float32(nil), ln.Gamma.W.Data...),
		beta:  append([]float32(nil), ln.Beta.W.Data...),
		eps:   ln.Eps,
	}
}

func (p lnParams) apply(x *tensor.Tensor) *tensor.Tensor {
	y := tensor.New(x.Shape[0], x.Shape[1])
	p.applyInto(y, x)
	return y
}

// applyInto writes the layer norm of x into y; y == x normalizes in place
// (each row's statistics are computed before any element of it is written).
func (p lnParams) applyInto(y, x *tensor.Tensor) {
	rows, d := x.Shape[0], x.Shape[1]
	for i := 0; i < rows; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var variance float64
		for _, v := range row {
			dv := float64(v) - mean
			variance += dv * dv
		}
		variance /= float64(d)
		inv := float32(1 / math.Sqrt(variance+float64(p.eps)))
		out := y.Data[i*d : (i+1)*d]
		for j, v := range row {
			out[j] = p.gamma[j]*((v-float32(mean))*inv) + p.beta[j]
		}
	}
}

func gelu(v float32) float32 {
	fv := float64(v)
	return float32(0.5 * fv * (1 + math.Tanh(0.7978845608028654*(fv+0.044715*fv*fv*fv))))
}

func geluApply(x *tensor.Tensor) *tensor.Tensor {
	return tensor.Apply(x, gelu)
}

// qBlock is one quantized transformer block.
type qBlock struct {
	ln1        lnParams
	qkv, proj  qLinear
	ln2        lnParams
	mlp1, mlp2 qLinear
}

// Model is the quantized ViT. It is immutable after construction and safe
// for concurrent inference.
type Model struct {
	Cfg    vit.Config
	QC     Config
	embed  qLinear
	pos    *tensor.Tensor
	blocks []qBlock
	normF  lnParams
	det    qLinear
	cls    qLinear
	// static, when non-nil, switches the linear sites from dynamic
	// activation quantization to the calibrated parameters.
	static *StaticParams
	// approxVector switches LayerNorm/softmax/GELU to the hardware vector
	// unit's approximations (internal/approx).
	approxVector bool
}

// SetApproxVector toggles the approximate vector-unit math (experiment E11).
func (qm *Model) SetApproxVector(on bool) { qm.approxVector = on }

// applyLN runs a LayerNorm with exact or approximate arithmetic.
func (qm *Model) applyLN(p lnParams, x *tensor.Tensor) *tensor.Tensor {
	if qm.approxVector {
		return approx.LayerNormRows(x, p.gamma, p.beta, p.eps)
	}
	return p.apply(x)
}

// applyLNInto writes the (exact or approximate) LayerNorm of x into dst.
// The approximate path is an accuracy experiment, not a serving path, so it
// keeps its own allocation and copies through.
func (qm *Model) applyLNInto(dst *tensor.Tensor, p lnParams, x *tensor.Tensor) {
	if qm.approxVector {
		y := approx.LayerNormRows(x, p.gamma, p.beta, p.eps)
		copy(dst.Data, y.Data)
		return
	}
	p.applyInto(dst, x)
}

// softmaxRows runs a row softmax with exact or approximate exponentials.
func (qm *Model) softmaxRows(x *tensor.Tensor) *tensor.Tensor {
	if qm.approxVector {
		return approx.SoftmaxRows(x)
	}
	return tensor.SoftmaxRows(x)
}

// softmaxRowsInPlace overwrites x with its row softmax.
func (qm *Model) softmaxRowsInPlace(x *tensor.Tensor) {
	if qm.approxVector {
		copy(x.Data, approx.SoftmaxRows(x).Data)
		return
	}
	tensor.SoftmaxRowsInto(x, x)
}

// applyGELU runs the activation with exact or approximate math.
func (qm *Model) applyGELU(x *tensor.Tensor) *tensor.Tensor {
	if qm.approxVector {
		return tensor.Apply(x, approx.GELU)
	}
	return geluApply(x)
}

// applyGELUInPlace overwrites x with the activation.
func (qm *Model) applyGELUInPlace(x *tensor.Tensor) {
	if qm.approxVector {
		x.ApplyInPlace(approx.GELU)
		return
	}
	x.ApplyInPlace(gelu)
}

// SetStatic installs calibrated activation parameters (from Calibrate).
// Pass nil to return to dynamic quantization.
func (qm *Model) SetStatic(sp *StaticParams) error {
	if sp != nil && len(sp.Blocks) != qm.Cfg.Depth {
		return fmt.Errorf("quant: static params for %d blocks, model has %d", len(sp.Blocks), qm.Cfg.Depth)
	}
	qm.static = sp
	return nil
}

// siteQP returns the static parameters for a site, or nil when dynamic.
func (qm *Model) siteQP(get func(*StaticParams) QParams) *QParams {
	if qm.static == nil {
		return nil
	}
	qp := get(qm.static)
	return &qp
}

// FromViT quantizes a trained float model. The float model is not modified.
func FromViT(m *vit.Model, qc Config) (*Model, error) {
	if err := qc.Validate(); err != nil {
		return nil, err
	}
	qm := &Model{
		Cfg:   m.Cfg,
		QC:    qc,
		embed: quantLinear(m.Embed, qc),
		pos:   m.Pos.Emb.W.Clone(),
		det:   quantLinear(m.Det, qc),
		cls:   quantLinear(m.Cls, qc),
	}
	layers := m.Trunk.Layers
	if len(layers) != 2*m.Cfg.Depth+1 {
		return nil, fmt.Errorf("quant: unexpected trunk length %d for depth %d", len(layers), m.Cfg.Depth)
	}
	finalLN, ok := layers[len(layers)-1].(*nn.LayerNorm)
	if !ok {
		return nil, fmt.Errorf("quant: trunk does not end in LayerNorm")
	}
	qm.normF = fromLayerNorm(finalLN)
	for i := 0; i+1 < len(layers); i += 2 {
		attnRes, ok1 := layers[i].(*nn.Residual)
		mlpRes, ok2 := layers[i+1].(*nn.Residual)
		if !ok1 || !ok2 {
			return nil, fmt.Errorf("quant: trunk layer %d is not a residual pair", i)
		}
		attnSeq, ok1 := attnRes.Body.(*nn.Sequential)
		mlpSeq, ok2 := mlpRes.Body.(*nn.Sequential)
		if !ok1 || !ok2 || len(attnSeq.Layers) < 2 || len(mlpSeq.Layers) < 4 {
			return nil, fmt.Errorf("quant: block %d has unexpected structure", i/2)
		}
		ln1, ok1 := attnSeq.Layers[0].(*nn.LayerNorm)
		mhsa, ok2 := attnSeq.Layers[1].(*nn.MultiHeadAttention)
		ln2, ok3 := mlpSeq.Layers[0].(*nn.LayerNorm)
		fc1, ok4 := mlpSeq.Layers[1].(*nn.Linear)
		fc2, ok5 := mlpSeq.Layers[3].(*nn.Linear)
		if !ok1 || !ok2 || !ok3 || !ok4 || !ok5 {
			return nil, fmt.Errorf("quant: block %d has unexpected layer types", i/2)
		}
		qm.blocks = append(qm.blocks, qBlock{
			ln1:  fromLayerNorm(ln1),
			qkv:  quantLinear(mhsa.QKV, qc),
			proj: quantLinear(mhsa.Proj, qc),
			ln2:  fromLayerNorm(ln2),
			mlp1: quantLinear(fc1, qc),
			mlp2: quantLinear(fc2, qc),
		})
	}
	return qm, nil
}

// attentionInto runs integer-GEMM multi-head self-attention on normalized
// input xn (B*T, Dim), writing the projected output into dst (B*T, Dim).
// blk is the block index (for static site lookup).
//
// The (batch × heads) loop is tiled across the shared worker pool; each tile
// stages its head slices, on-the-fly key/value quantizations, and score
// matrix in pooled scratch, so the steady-state path performs no per-head
// allocation. The score and context products always use dynamic per-head
// weight quantization — those "weights" are activations, so no calibrated
// static parameters exist for them.
func (qm *Model) attentionInto(dst *tensor.Tensor, blk int, b qBlock, xn *tensor.Tensor) {
	ab := qm.QC.actBits()
	d := qm.Cfg.Dim
	t := qm.Cfg.Tokens()
	h := qm.Cfg.Heads
	dh := d / h
	rows := xn.Shape[0]
	batch := rows / t
	qkv := tensor.GetScratchNoZero(rows, 3*d)
	b.qkv.forwardWithInto(qkv, xn, qm.siteQP(func(s *StaticParams) QParams { return s.Blocks[blk].QKVIn }), ab)
	out := tensor.GetScratchNoZero(rows, d)
	scale := float32(1 / math.Sqrt(float64(dh)))
	tensor.ParallelFor(batch*h, 1, func(lo, hi int) {
		qh := tensor.GetScratchNoZero(t, dh)
		kh := tensor.GetScratchNoZero(t, dh)
		vt := tensor.GetScratchNoZero(dh, t)
		scores := tensor.GetScratchNoZero(t, t)
		kw := getQW(t, dh, qm.QC.Bits, qm.QC.PerChannel)
		vw := getQW(dh, t, qm.QC.Bits, qm.QC.PerChannel)
		for u := lo; u < hi; u++ {
			bi, hd := u/h, u%h
			for ti := 0; ti < t; ti++ {
				src := qkv.Data[(bi*t+ti)*3*d:]
				copy(qh.Data[ti*dh:(ti+1)*dh], src[hd*dh:(hd+1)*dh])
				copy(kh.Data[ti*dh:(ti+1)*dh], src[d+hd*dh:d+(hd+1)*dh])
				// v goes straight into its transpose (dh, t): the context
				// product quantizes vᵀ as a per-row weight matrix.
				for j := 0; j < dh; j++ {
					vt.Data[j*t+ti] = src[2*d+hd*dh+j]
				}
			}
			// scores = qh @ khᵀ, integer GEMM with kh as per-row weights.
			quantizeWeightInto(kw, kh.Data, qm.QC.PerChannel)
			LinearInto(scores, qh, *kw, nil, ab)
			scores.ScaleInPlace(scale)
			qm.softmaxRowsInPlace(scores)
			// context = p @ vh = p @ (vhᵀ)ᵀ; qh's values are dead, reuse it
			// as the (t, dh) context destination.
			quantizeWeightInto(vw, vt.Data, qm.QC.PerChannel)
			LinearInto(qh, scores, *vw, nil, ab)
			for ti := 0; ti < t; ti++ {
				o := out.Data[(bi*t+ti)*d+hd*dh:]
				copy(o[:dh], qh.Data[ti*dh:(ti+1)*dh])
			}
		}
		putQW(kw, vw)
		tensor.PutScratch(qh, kh, vt, scores)
	})
	b.proj.forwardWithInto(dst, out, qm.siteQP(func(s *StaticParams) QParams { return s.Blocks[blk].ProjIn }), ab)
	tensor.PutScratch(qkv, out)
}

// Forward runs the quantized trunk on packed patches, returning token
// features (B*Tokens, Dim). Every trunk intermediate lives in the scratch
// arena; only the returned feature tensor is heap-allocated.
func (qm *Model) Forward(patches *tensor.Tensor) *tensor.Tensor {
	ab := qm.QC.actBits()
	rows := patches.Shape[0]
	d := qm.Cfg.Dim
	t := qm.Cfg.Tokens()
	x := tensor.GetScratchNoZero(rows, d)
	qm.embed.forwardWithInto(x, patches, qm.siteQP(func(s *StaticParams) QParams { return s.EmbedIn }), ab)
	// position embedding
	for i := 0; i < rows; i++ {
		tok := i % t
		row := x.Data[i*d : (i+1)*d]
		pos := qm.pos.Data[tok*d : (tok+1)*d]
		for j, p := range pos {
			row[j] += p
		}
	}
	// xn holds each sublayer's normalized input, y its output (added back
	// into the residual stream x); the MLP hidden buffer is shared across
	// blocks since every block has the same expansion width.
	xn := tensor.GetScratchNoZero(rows, d)
	y := tensor.GetScratchNoZero(rows, d)
	var hbuf *tensor.Tensor
	if len(qm.blocks) > 0 {
		hbuf = tensor.GetScratchNoZero(rows, qm.blocks[0].mlp1.w.Out)
	}
	for i, b := range qm.blocks {
		qm.applyLNInto(xn, b.ln1, x)
		qm.attentionInto(y, i, b, xn)
		x.AddInPlace(y)
		qm.applyLNInto(xn, b.ln2, x)
		b.mlp1.forwardWithInto(hbuf, xn,
			qm.siteQP(func(s *StaticParams) QParams { return s.Blocks[i].MLP1In }), ab)
		qm.applyGELUInPlace(hbuf)
		b.mlp2.forwardWithInto(y, hbuf,
			qm.siteQP(func(s *StaticParams) QParams { return s.Blocks[i].MLP2In }), ab)
		x.AddInPlace(y)
	}
	feats := tensor.New(rows, d)
	qm.applyLNInto(feats, qm.normF, x)
	tensor.PutScratch(x, xn, y, hbuf)
	return feats
}

// DetHead applies the quantized detection head.
func (qm *Model) DetHead(feats *tensor.Tensor) *tensor.Tensor {
	return qm.det.forwardWith(feats, qm.siteQP(func(s *StaticParams) QParams { return s.DetIn }), qm.QC.actBits())
}

// ClsHead mean-pools and applies the quantized classification head.
func (qm *Model) ClsHead(feats *tensor.Tensor) *tensor.Tensor {
	t := qm.Cfg.Tokens()
	b := feats.Shape[0] / t
	d := qm.Cfg.Dim
	pooled := tensor.GetScratch(b, d)
	inv := float32(1) / float32(t)
	for bi := 0; bi < b; bi++ {
		orow := pooled.Data[bi*d : (bi+1)*d]
		for ti := 0; ti < t; ti++ {
			frow := feats.Data[(bi*t+ti)*d : (bi*t+ti+1)*d]
			for j, v := range frow {
				orow[j] += v * inv
			}
		}
	}
	out := qm.cls.forwardWith(pooled, qm.siteQP(func(s *StaticParams) QParams { return s.ClsIn }), qm.QC.actBits())
	tensor.PutScratch(pooled)
	return out
}

// Detect runs end-to-end quantized detection on one (C,H,W) image.
func (qm *Model) Detect(img *tensor.Tensor, objThresh, nmsIoU float64) []geom.Scored {
	patches := vit.Patchify(qm.Cfg, []*tensor.Tensor{img})
	feats := qm.Forward(patches)
	det := qm.DetHead(feats)
	return vit.Decode(qm.Cfg, det, objThresh, nmsIoU)
}

// DetectBatch runs end-to-end quantized detection on a micro-batch of
// (C,H,W) images in one packed forward pass, returning one detection set
// per image.
func (qm *Model) DetectBatch(imgs []*tensor.Tensor, objThresh, nmsIoU float64) [][]geom.Scored {
	if len(imgs) == 0 {
		return nil
	}
	t := qm.Cfg.Tokens()
	patches := vit.Patchify(qm.Cfg, imgs)
	feats := qm.Forward(patches)
	det := qm.DetHead(feats)
	out := make([][]geom.Scored, len(imgs))
	for i := range imgs {
		out[i] = vit.Decode(qm.Cfg, det.Slice2D(i*t, (i+1)*t), objThresh, nmsIoU)
	}
	return out
}

// WeightBytes returns the quantized weight storage footprint in bytes,
// the figure the edge scheduler budgets against.
func (qm *Model) WeightBytes() int {
	bits := 0
	add := func(l qLinear) {
		bits += len(l.w.Q) * l.w.Bits
		bits += 32 * (len(l.w.Scales) + len(l.bias))
	}
	add(qm.embed)
	add(qm.det)
	add(qm.cls)
	for _, b := range qm.blocks {
		add(b.qkv)
		add(b.proj)
		add(b.mlp1)
		add(b.mlp2)
		bits += 32 * (len(b.ln1.gamma) + len(b.ln1.beta) + len(b.ln2.gamma) + len(b.ln2.beta))
	}
	bits += 32 * (len(qm.normF.gamma) + len(qm.normF.beta) + qm.pos.Size())
	return bits / 8
}
