package quant

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"

	"itask/internal/tensor"
	"itask/internal/vit"
)

// Serialized quantized-model format (little-endian):
//
//	magic "ITQ8" | version u32 |
//	config: 9×u32 (vit geometry) + 3×u32 (quant scheme) |
//	pos embedding f32[] |
//	embed qLinear | blocks (ln1, qkv, proj, ln2, mlp1, mlp2)... |
//	normF ln | det qLinear | cls qLinear
//
// qLinear: out u32, in u32, bits u32, nScales u32, scales f32[],
// rowSums i32[], bias-present u8, bias f32[], codes i8[].
// ln: dim u32, eps f32, gamma f32[], beta f32[].
const (
	qckptMagic   = "ITQ8"
	qckptVersion = 1
)

type qwriter struct {
	w   *bufio.Writer
	err error
}

func (q *qwriter) u32(v uint32) {
	if q.err == nil {
		q.err = binary.Write(q.w, binary.LittleEndian, v)
	}
}

func (q *qwriter) f32(v float32) { q.u32(math.Float32bits(v)) }

func (q *qwriter) f32s(vs []float32) {
	q.u32(uint32(len(vs)))
	for _, v := range vs {
		q.f32(v)
	}
}

func (q *qwriter) i32s(vs []int32) {
	q.u32(uint32(len(vs)))
	for _, v := range vs {
		q.u32(uint32(v))
	}
}

func (q *qwriter) i8s(vs []int8) {
	q.u32(uint32(len(vs)))
	if q.err != nil {
		return
	}
	buf := make([]byte, len(vs))
	for i, v := range vs {
		buf[i] = byte(v)
	}
	_, q.err = q.w.Write(buf)
}

func (q *qwriter) linear(l qLinear) {
	q.u32(uint32(l.w.Out))
	q.u32(uint32(l.w.In))
	q.u32(uint32(l.w.Bits))
	q.f32s(l.w.Scales)
	q.i32s(l.w.RowSums)
	if l.bias != nil {
		q.u32(1)
		q.f32s(l.bias)
	} else {
		q.u32(0)
	}
	q.i8s(l.w.Q)
}

func (q *qwriter) ln(p lnParams) {
	q.u32(uint32(len(p.gamma)))
	q.f32(p.eps)
	q.f32s(p.gamma)
	q.f32s(p.beta)
}

// Save writes the quantized model to w.
func (qm *Model) Save(w io.Writer) error {
	qw := &qwriter{w: bufio.NewWriter(w)}
	if _, err := qw.w.WriteString(qckptMagic); err != nil {
		return err
	}
	qw.u32(qckptVersion)
	c := qm.Cfg
	for _, v := range []int{c.ImageSize, c.Channels, c.PatchSize, c.Dim, c.Depth, c.Heads, c.MLPRatio, c.Classes} {
		qw.u32(uint32(v))
	}
	qw.f32(float32(c.Dropout))
	qw.u32(uint32(qm.QC.Bits))
	qw.u32(uint32(qm.QC.ActBits))
	if qm.QC.PerChannel {
		qw.u32(1)
	} else {
		qw.u32(0)
	}
	qw.f32s(qm.pos.Data)
	qw.linear(qm.embed)
	for _, b := range qm.blocks {
		qw.ln(b.ln1)
		qw.linear(b.qkv)
		qw.linear(b.proj)
		qw.ln(b.ln2)
		qw.linear(b.mlp1)
		qw.linear(b.mlp2)
	}
	qw.ln(qm.normF)
	qw.linear(qm.det)
	qw.linear(qm.cls)
	if qw.err != nil {
		return qw.err
	}
	return qw.w.Flush()
}

type qreader struct {
	r   *bufio.Reader
	err error
}

func (q *qreader) u32() uint32 {
	if q.err != nil {
		return 0
	}
	var v uint32
	q.err = binary.Read(q.r, binary.LittleEndian, &v)
	return v
}

func (q *qreader) f32() float32 { return math.Float32frombits(q.u32()) }

func (q *qreader) f32s() []float32 {
	n := q.u32()
	if q.err != nil || n > 1<<28 {
		if q.err == nil {
			q.err = fmt.Errorf("quant: implausible f32 slice length %d", n)
		}
		return nil
	}
	out := make([]float32, n)
	for i := range out {
		out[i] = q.f32()
	}
	return out
}

func (q *qreader) i32s() []int32 {
	n := q.u32()
	if q.err != nil || n > 1<<28 {
		if q.err == nil {
			q.err = fmt.Errorf("quant: implausible i32 slice length %d", n)
		}
		return nil
	}
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(q.u32())
	}
	return out
}

func (q *qreader) i8s() []int8 {
	n := q.u32()
	if q.err != nil || n > 1<<30 {
		if q.err == nil {
			q.err = fmt.Errorf("quant: implausible i8 slice length %d", n)
		}
		return nil
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(q.r, buf); err != nil {
		q.err = err
		return nil
	}
	out := make([]int8, n)
	for i, b := range buf {
		out[i] = int8(b)
	}
	return out
}

func (q *qreader) linear() qLinear {
	var l qLinear
	l.w.Out = int(q.u32())
	l.w.In = int(q.u32())
	l.w.Bits = int(q.u32())
	l.w.Scales = q.f32s()
	l.w.RowSums = q.i32s()
	if q.u32() == 1 {
		l.bias = q.f32s()
	}
	l.w.Q = q.i8s()
	if q.err == nil {
		if len(l.w.Q) != l.w.Out*l.w.In {
			q.err = fmt.Errorf("quant: weight codes %d for %dx%d", len(l.w.Q), l.w.Out, l.w.In)
		} else if len(l.w.RowSums) != l.w.Out {
			q.err = fmt.Errorf("quant: row sums %d for out=%d", len(l.w.RowSums), l.w.Out)
		} else if len(l.w.Scales) != 1 && len(l.w.Scales) != l.w.Out {
			q.err = fmt.Errorf("quant: %d scales for out=%d", len(l.w.Scales), l.w.Out)
		}
	}
	return l
}

func (q *qreader) ln() lnParams {
	var p lnParams
	dim := int(q.u32())
	p.eps = q.f32()
	p.gamma = q.f32s()
	p.beta = q.f32s()
	if q.err == nil && (len(p.gamma) != dim || len(p.beta) != dim) {
		q.err = fmt.Errorf("quant: LayerNorm params %d/%d for dim %d", len(p.gamma), len(p.beta), dim)
	}
	return p
}

// Load reads a quantized model from r.
func Load(r io.Reader) (*Model, error) {
	qr := &qreader{r: bufio.NewReader(r)}
	magic := make([]byte, 4)
	if _, err := io.ReadFull(qr.r, magic); err != nil {
		return nil, fmt.Errorf("quant: reading magic: %w", err)
	}
	if string(magic) != qckptMagic {
		return nil, fmt.Errorf("quant: bad magic %q", magic)
	}
	if v := qr.u32(); v != qckptVersion {
		if qr.err != nil {
			return nil, qr.err
		}
		return nil, fmt.Errorf("quant: unsupported version %d", v)
	}
	var cfg vit.Config
	cfg.ImageSize = int(qr.u32())
	cfg.Channels = int(qr.u32())
	cfg.PatchSize = int(qr.u32())
	cfg.Dim = int(qr.u32())
	cfg.Depth = int(qr.u32())
	cfg.Heads = int(qr.u32())
	cfg.MLPRatio = int(qr.u32())
	cfg.Classes = int(qr.u32())
	cfg.Dropout = float64(qr.f32())
	if qr.err != nil {
		return nil, qr.err
	}
	if err := cfg.Validate(); err != nil {
		return nil, fmt.Errorf("quant: checkpoint config invalid: %w", err)
	}
	var qc Config
	qc.Bits = int(qr.u32())
	qc.ActBits = int(qr.u32())
	qc.PerChannel = qr.u32() == 1
	if qr.err != nil {
		return nil, qr.err
	}
	if err := qc.Validate(); err != nil {
		return nil, fmt.Errorf("quant: checkpoint scheme invalid: %w", err)
	}
	qm := &Model{Cfg: cfg, QC: qc}
	posData := qr.f32s()
	if qr.err == nil && len(posData) != cfg.Tokens()*cfg.Dim {
		return nil, fmt.Errorf("quant: pos embedding %d values, want %d", len(posData), cfg.Tokens()*cfg.Dim)
	}
	if qr.err != nil {
		return nil, qr.err
	}
	qm.pos = tensor.FromSlice(posData, cfg.Tokens(), cfg.Dim)
	qm.embed = qr.linear()
	for i := 0; i < cfg.Depth; i++ {
		var b qBlock
		b.ln1 = qr.ln()
		b.qkv = qr.linear()
		b.proj = qr.linear()
		b.ln2 = qr.ln()
		b.mlp1 = qr.linear()
		b.mlp2 = qr.linear()
		qm.blocks = append(qm.blocks, b)
	}
	qm.normF = qr.ln()
	qm.det = qr.linear()
	qm.cls = qr.linear()
	if qr.err != nil {
		return nil, qr.err
	}
	return qm, nil
}

// SaveFile writes the quantized model to path.
func (qm *Model) SaveFile(path string) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if err := qm.Save(f); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

// LoadFile reads a quantized model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
