package quant

import (
	"fmt"

	"itask/internal/tensor"
)

// InjectBitFlips flips each stored weight bit independently with probability
// ratePerBit — the standard model for SRAM soft errors and marginal-voltage
// faults in accelerator weight buffers. Only the Bits bits a real weight
// SRAM would store are eligible (codes are kept sign-extended in int8, so a
// flipped stored sign bit re-sign-extends). Row sums are recomputed so the
// zero-point correction stays consistent with the corrupted codes, exactly
// as hardware computing them on the fly would behave.
//
// The model is modified in place; clone via Save/Load first to keep a
// pristine copy. Returns the number of bits flipped.
func InjectBitFlips(qm *Model, ratePerBit float64, seed uint64) (int, error) {
	if ratePerBit < 0 || ratePerBit > 1 {
		return 0, fmt.Errorf("quant: bit-flip rate %v outside [0,1]", ratePerBit)
	}
	rng := tensor.NewRNG(seed)
	flips := 0
	corrupt := func(l *qLinear) {
		bits := l.w.Bits
		mask := uint32(1)<<bits - 1
		signBit := uint32(1) << (bits - 1)
		for i, code := range l.w.Q {
			u := uint32(uint8(code)) & mask
			changed := false
			for b := 0; b < bits; b++ {
				if rng.Float64() < ratePerBit {
					u ^= 1 << b
					changed = true
					flips++
				}
			}
			if changed {
				// Sign-extend the Bits-wide pattern back into int8.
				if u&signBit != 0 {
					u |= ^mask
				}
				l.w.Q[i] = int8(u)
			}
		}
		for o := 0; o < l.w.Out; o++ {
			var s int32
			for _, q := range l.w.Q[o*l.w.In : (o+1)*l.w.In] {
				s += int32(q)
			}
			l.w.RowSums[o] = s
		}
	}
	corrupt(&qm.embed)
	for i := range qm.blocks {
		corrupt(&qm.blocks[i].qkv)
		corrupt(&qm.blocks[i].proj)
		corrupt(&qm.blocks[i].mlp1)
		corrupt(&qm.blocks[i].mlp2)
	}
	corrupt(&qm.det)
	corrupt(&qm.cls)
	return flips, nil
}

// WeightBits returns the total number of stored weight bits — the fault
// surface InjectBitFlips draws from.
func (qm *Model) WeightBits() int {
	n := 0
	add := func(l qLinear) { n += len(l.w.Q) * l.w.Bits }
	add(qm.embed)
	for _, b := range qm.blocks {
		add(b.qkv)
		add(b.proj)
		add(b.mlp1)
		add(b.mlp2)
	}
	add(qm.det)
	add(qm.cls)
	return n
}
