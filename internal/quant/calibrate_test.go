package quant

import (
	"math"
	"testing"

	"itask/internal/tensor"
	"itask/internal/vit"
)

func TestObserver(t *testing.T) {
	var o Observer
	func() {
		defer func() {
			if recover() == nil {
				t.Error("empty observer should panic")
			}
		}()
		o.Params(8, 1)
	}()
	o.Observe(tensor.FromSlice([]float32{-1, 0, 3}, 3))
	o.Observe(tensor.FromSlice([]float32{2, 5}, 2))
	if o.Samples() != 5 {
		t.Errorf("samples = %d", o.Samples())
	}
	qp := o.Params(8, 1)
	// Range [-1, 5] must round-trip the extremes within half a step.
	for _, v := range []float32{-1, 0, 5} {
		got := qp.Dequantize(qp.Quantize(v))
		if d := got - v; d > qp.Scale/2+1e-6 || d < -qp.Scale/2-1e-6 {
			t.Errorf("round trip %v -> %v", v, got)
		}
	}
}

func calibModel(t *testing.T) (*vit.Model, []*tensor.Tensor) {
	t.Helper()
	cfg := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: 6,
	}
	m := vit.New(cfg, tensor.NewRNG(1))
	rng := tensor.NewRNG(2)
	var images []*tensor.Tensor
	for i := 0; i < 6; i++ {
		images = append(images, tensor.Uniform(rng, 0, 1, 3, 32, 32))
	}
	return m, images
}

func TestCalibrateStructure(t *testing.T) {
	m, images := calibModel(t)
	sp, err := Calibrate(m, images, DefaultConfig(), 0.999)
	if err != nil {
		t.Fatal(err)
	}
	if len(sp.Blocks) != m.Cfg.Depth {
		t.Fatalf("blocks = %d", len(sp.Blocks))
	}
	for i, b := range sp.Blocks {
		for _, qp := range []QParams{b.QKVIn, b.ProjIn, b.MLP1In, b.MLP2In} {
			if qp.Scale <= 0 {
				t.Errorf("block %d has non-positive scale", i)
			}
		}
	}
	if sp.EmbedIn.Scale <= 0 || sp.DetIn.Scale <= 0 || sp.ClsIn.Scale <= 0 {
		t.Error("head/embed params degenerate")
	}
}

func TestCalibrateErrors(t *testing.T) {
	m, images := calibModel(t)
	if _, err := Calibrate(m, nil, DefaultConfig(), 0.999); err == nil {
		t.Error("no calibration images should fail")
	}
	if _, err := Calibrate(m, images, Config{Bits: 3}, 0.999); err == nil {
		t.Error("bad scheme should fail")
	}
}

// TestStaticCloseToDynamic is the key fidelity test: statically calibrated
// inference must track dynamic quantization closely on in-distribution
// inputs (same data family as calibration).
func TestStaticCloseToDynamic(t *testing.T) {
	m, images := calibModel(t)
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Calibrate(m, images, DefaultConfig(), 0.999)
	if err != nil {
		t.Fatal(err)
	}

	test := tensor.Uniform(tensor.NewRNG(9), 0, 1, 3, 32, 32)
	patches := vit.Patchify(m.Cfg, []*tensor.Tensor{test})

	dynOut := qm.DetHead(qm.Forward(patches))
	if err := qm.SetStatic(sp); err != nil {
		t.Fatal(err)
	}
	statOut := qm.DetHead(qm.Forward(patches))
	if err := qm.SetStatic(nil); err != nil {
		t.Fatal(err)
	}
	backOut := qm.DetHead(qm.Forward(patches))

	// Static vs dynamic RMS difference small relative to signal.
	var diff, sig float64
	for i := range dynOut.Data {
		d := float64(statOut.Data[i] - dynOut.Data[i])
		diff += d * d
		sig += float64(dynOut.Data[i]) * float64(dynOut.Data[i])
	}
	if math.Sqrt(diff) > 0.35*math.Sqrt(sig) {
		t.Errorf("static deviates too much: rms diff %.4f vs signal %.4f",
			math.Sqrt(diff/float64(len(dynOut.Data))), math.Sqrt(sig/float64(len(dynOut.Data))))
	}
	// SetStatic(nil) restores dynamic behaviour exactly.
	if !backOut.Equal(dynOut) {
		t.Error("clearing static params did not restore dynamic inference")
	}
}

func TestSetStaticValidation(t *testing.T) {
	m, images := calibModel(t)
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	sp, err := Calibrate(m, images, DefaultConfig(), 0.999)
	if err != nil {
		t.Fatal(err)
	}
	sp.Blocks = sp.Blocks[:1] // wrong depth
	if err := qm.SetStatic(sp); err == nil {
		t.Error("depth mismatch should fail")
	}
}
