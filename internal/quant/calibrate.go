package quant

import (
	"fmt"
	"math"

	"itask/internal/nn"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// Observer accumulates the value distribution of an activation site across
// calibration batches. A percentile clip discards outliers at Params time.
type Observer struct {
	values []float32
}

// Observe folds one activation tensor into the statistics.
func (o *Observer) Observe(t *tensor.Tensor) {
	o.values = append(o.values, t.Data...)
}

// Params computes the calibrated quantization parameters at the given bit
// width; pct in (0,1] clips symmetric tails (1 = pure min/max).
func (o *Observer) Params(bits int, pct float64) QParams {
	if len(o.values) == 0 {
		panic("quant: Observer.Params with no observations")
	}
	return PercentileParams(o.values, bits, pct)
}

// Samples returns the number of observed scalars.
func (o *Observer) Samples() int { return len(o.values) }

// StaticParams holds calibrated activation parameters for every linear site
// of the quantized ViT. Attention-internal products (scores, context)
// remain dynamically quantized: their ranges vary strongly per image and
// head, which matches how production int8 transformer stacks split it.
type StaticParams struct {
	EmbedIn QParams
	Blocks  []StaticBlockParams
	DetIn   QParams
	ClsIn   QParams
}

// StaticBlockParams are the per-block linear-input parameters.
type StaticBlockParams struct {
	QKVIn, ProjIn, MLP1In, MLP2In QParams
}

// floatAttentionContext computes the pre-projection attention output (the
// concatenated head contexts) of a float MHSA layer on normalized input xn
// — the activation the quantized model feeds to its projection GEMM.
func floatAttentionContext(a *nn.MultiHeadAttention, xn *tensor.Tensor) *tensor.Tensor {
	d := a.Dim
	t := a.Tokens
	h := a.Heads
	dh := d / h
	rows := xn.Shape[0]
	batch := rows / t
	qkv := a.QKV.Forward(xn, false)
	out := tensor.New(rows, d)
	scale := float32(1 / math.Sqrt(float64(dh)))
	for bi := 0; bi < batch; bi++ {
		for hi := 0; hi < h; hi++ {
			qh := tensor.New(t, dh)
			kh := tensor.New(t, dh)
			vh := tensor.New(t, dh)
			for ti := 0; ti < t; ti++ {
				src := qkv.Data[(bi*t+ti)*3*d:]
				copy(qh.Data[ti*dh:(ti+1)*dh], src[hi*dh:(hi+1)*dh])
				copy(kh.Data[ti*dh:(ti+1)*dh], src[d+hi*dh:d+(hi+1)*dh])
				copy(vh.Data[ti*dh:(ti+1)*dh], src[2*d+hi*dh:2*d+(hi+1)*dh])
			}
			scores := tensor.MatMulT(qh, kh)
			scores.ScaleInPlace(scale)
			ctx := tensor.MatMul(tensor.SoftmaxRows(scores), vh)
			for ti := 0; ti < t; ti++ {
				copy(out.Data[(bi*t+ti)*d+hi*dh:(bi*t+ti)*d+(hi+1)*dh], ctx.Data[ti*dh:(ti+1)*dh])
			}
		}
	}
	return out
}

// Calibrate runs calibration images through the FLOAT model, observes the
// input of every linear site, and returns static activation parameters for
// the scheme. pct is the percentile clip (0.999 is a good default).
func Calibrate(m *vit.Model, images []*tensor.Tensor, qc Config, pct float64) (*StaticParams, error) {
	if err := qc.Validate(); err != nil {
		return nil, err
	}
	if len(images) == 0 {
		return nil, fmt.Errorf("quant: calibration needs at least one image")
	}
	bits := qc.actBits()
	var embedIn, detIn, clsIn Observer
	blockObs := make([]struct{ qkv, proj, mlp1, mlp2 Observer }, m.Cfg.Depth)

	patches := vit.Patchify(m.Cfg, images)
	embedIn.Observe(patches)
	x := m.Embed.Forward(patches, false)
	x = m.Pos.Forward(x, false)
	layers := m.Trunk.Layers
	if len(layers) != 2*m.Cfg.Depth+1 {
		return nil, fmt.Errorf("quant: unexpected trunk length %d", len(layers))
	}
	for i := 0; i < m.Cfg.Depth; i++ {
		attnSeq, err := residualBody(layers[2*i])
		if err != nil {
			return nil, err
		}
		mlpSeq, err := residualBody(layers[2*i+1])
		if err != nil {
			return nil, err
		}
		mhsa, ok := attnSeq.Layers[1].(*nn.MultiHeadAttention)
		if !ok {
			return nil, fmt.Errorf("quant: block %d missing attention", i)
		}
		xn := attnSeq.Layers[0].Forward(x, false)
		blockObs[i].qkv.Observe(xn)
		blockObs[i].proj.Observe(floatAttentionContext(mhsa, xn))
		x = tensor.Add(x, mhsa.Forward(xn, false))

		yn := mlpSeq.Layers[0].Forward(x, false)
		blockObs[i].mlp1.Observe(yn)
		h := mlpSeq.Layers[2].Forward(mlpSeq.Layers[1].Forward(yn, false), false)
		blockObs[i].mlp2.Observe(h)
		x = tensor.Add(x, mlpSeq.Layers[3].Forward(h, false))
	}
	feats := layers[len(layers)-1].Forward(x, false)
	detIn.Observe(feats)
	clsIn.Observe(m.PoolFeats(feats))

	sp := &StaticParams{
		EmbedIn: embedIn.Params(bits, pct),
		DetIn:   detIn.Params(bits, pct),
		ClsIn:   clsIn.Params(bits, pct),
	}
	for i := range blockObs {
		sp.Blocks = append(sp.Blocks, StaticBlockParams{
			QKVIn:  blockObs[i].qkv.Params(bits, pct),
			ProjIn: blockObs[i].proj.Params(bits, pct),
			MLP1In: blockObs[i].mlp1.Params(bits, pct),
			MLP2In: blockObs[i].mlp2.Params(bits, pct),
		})
	}
	return sp, nil
}

// residualBody unwraps Residual(Sequential(...)).
func residualBody(l nn.Layer) (*nn.Sequential, error) {
	res, ok := l.(*nn.Residual)
	if !ok {
		return nil, fmt.Errorf("quant: trunk layer is %T, want *nn.Residual", l)
	}
	seq, ok := res.Body.(*nn.Sequential)
	if !ok {
		return nil, fmt.Errorf("quant: residual body is %T, want *nn.Sequential", res.Body)
	}
	return seq, nil
}
