package quant

import (
	"testing"

	"itask/internal/tensor"
	"itask/internal/vit"
)

// These regression tests pin the steady-state allocation behavior of the
// inference hot paths: after warmup has populated the scratch arenas and
// staging pools, a forward must allocate only a small constant number of
// objects (closure headers for pool dispatch, the escaping output tensor),
// independent of depth × heads worth of per-head intermediates. The seed
// implementation allocated every intermediate fresh; a regression that
// reintroduces per-head or per-layer allocation blows well past these
// bounds.

func TestLinearIntoSteadyStateAllocs(t *testing.T) {
	rng := tensor.NewRNG(21)
	qw := QuantizeWeight(tensor.Randn(rng, 1, 64, 64), 8, true)
	x := tensor.Randn(rng, 1, 64, 64)
	out := tensor.New(64, 64)
	for i := 0; i < 5; i++ {
		LinearInto(out, x, qw, nil, 8) // warm the staging pools
	}
	avg := testing.AllocsPerRun(100, func() {
		LinearInto(out, x, qw, nil, 8)
	})
	// Budget: pool-dispatch closures for the tiled GEMM; no O(rows) or
	// O(size) terms.
	if avg > 6 {
		t.Fatalf("LinearInto steady state allocates %.1f objects/op, want <= 6", avg)
	}
}

func TestQuantForwardSteadyStateAllocs(t *testing.T) {
	cfg := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2, Classes: 5,
	}
	rng := tensor.NewRNG(22)
	m := vit.New(cfg, rng)
	qm, err := FromViT(m, DefaultConfig())
	if err != nil {
		t.Fatal(err)
	}
	img := tensor.Randn(rng, 0.5, 3, 32, 32)
	patches := vit.Patchify(cfg, []*tensor.Tensor{img})
	for i := 0; i < 5; i++ {
		qm.Forward(patches)
	}
	avg := testing.AllocsPerRun(20, func() {
		qm.Forward(patches)
	})
	// Budget: the escaping feature tensor, scratch headers, and dispatch
	// closures — a small constant. The seed implementation allocated
	// hundreds of objects per forward (fresh tensors for every per-head
	// slice, score matrix, and per-layer intermediate).
	if avg > 150 {
		t.Fatalf("quant Forward steady state allocates %.1f objects/op, want <= 150", avg)
	}
	t.Logf("quant Forward steady-state allocs/op: %.1f", avg)
}
