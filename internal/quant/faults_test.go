package quant

import (
	"bytes"
	"math"
	"testing"

	"itask/internal/tensor"
	"itask/internal/vit"
)

// cloneModel deep-copies a quantized model via the checkpoint format.
func cloneModel(t *testing.T, qm *Model) *Model {
	t.Helper()
	var buf bytes.Buffer
	if err := qm.Save(&buf); err != nil {
		t.Fatal(err)
	}
	out, err := Load(&buf)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

func TestInjectBitFlipsRateZeroIsNoop(t *testing.T) {
	qm := serTestModel(t)
	ref := cloneModel(t, qm)
	flips, err := InjectBitFlips(qm, 0, 1)
	if err != nil || flips != 0 {
		t.Fatalf("flips=%d err=%v", flips, err)
	}
	img := tensor.Randn(tensor.NewRNG(2), 0.5, 3, 32, 32)
	patches := vit.Patchify(qm.Cfg, []*tensor.Tensor{img})
	if !qm.DetHead(qm.Forward(patches)).Equal(ref.DetHead(ref.Forward(patches))) {
		t.Error("zero-rate injection changed the model")
	}
}

func TestInjectBitFlipsCountMatchesRate(t *testing.T) {
	qm := serTestModel(t)
	total := qm.WeightBits()
	if total <= 0 {
		t.Fatal("no weight bits")
	}
	rate := 0.01
	flips, err := InjectBitFlips(qm, rate, 3)
	if err != nil {
		t.Fatal(err)
	}
	expected := float64(total) * rate
	if float64(flips) < expected/2 || float64(flips) > expected*2 {
		t.Errorf("flips %d, expected ~%.0f of %d bits", flips, expected, total)
	}
}

func TestInjectBitFlipsRowSumsConsistent(t *testing.T) {
	qm := serTestModel(t)
	if _, err := InjectBitFlips(qm, 0.05, 4); err != nil {
		t.Fatal(err)
	}
	// Row sums must equal the recomputed sums of the corrupted codes.
	check := func(l qLinear) {
		for o := 0; o < l.w.Out; o++ {
			var s int32
			for _, q := range l.w.Q[o*l.w.In : (o+1)*l.w.In] {
				s += int32(q)
			}
			if s != l.w.RowSums[o] {
				t.Fatalf("row sum stale after injection")
			}
		}
	}
	check(qm.embed)
	check(qm.det)
}

func TestInjectBitFlipsCodesStayInRange(t *testing.T) {
	// For a sub-8-bit model, corrupted codes must stay valid Bits-bit
	// values after sign extension.
	cfg := vit.TinyConfig(3)
	m := vit.New(cfg, tensor.NewRNG(5))
	qm, err := FromViT(m, Config{Bits: 4, PerChannel: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := InjectBitFlips(qm, 0.2, 6); err != nil {
		t.Fatal(err)
	}
	for _, q := range qm.embed.w.Q {
		if q < -8 || q > 7 {
			t.Fatalf("4-bit code %d out of range after injection", q)
		}
	}
}

func TestInjectBitFlipsDegradesGracefully(t *testing.T) {
	qm := serTestModel(t)
	img := tensor.Randn(tensor.NewRNG(7), 0.5, 3, 32, 32)
	patches := vit.Patchify(qm.Cfg, []*tensor.Tensor{img})
	ref := qm.DetHead(qm.Forward(patches))

	rms := func(rate float64, seed uint64) float64 {
		c := cloneModel(t, qm)
		if _, err := InjectBitFlips(c, rate, seed); err != nil {
			t.Fatal(err)
		}
		out := c.DetHead(c.Forward(patches))
		var sum float64
		for i := range out.Data {
			d := float64(out.Data[i] - ref.Data[i])
			sum += d * d
		}
		return math.Sqrt(sum / float64(len(out.Data)))
	}
	low := rms(1e-4, 8)
	high := rms(1e-2, 8)
	if high <= low {
		t.Errorf("more faults should hurt more: rms(1e-4)=%v rms(1e-2)=%v", low, high)
	}
}

func TestInjectBitFlipsValidation(t *testing.T) {
	qm := serTestModel(t)
	if _, err := InjectBitFlips(qm, -0.1, 1); err == nil {
		t.Error("negative rate should fail")
	}
	if _, err := InjectBitFlips(qm, 1.5, 1); err == nil {
		t.Error("rate > 1 should fail")
	}
}
