package distill

import (
	"testing"

	"itask/internal/dataset"
	"itask/internal/eval"
	"itask/internal/kg"
	"itask/internal/llm"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// smallGen returns a fast scene config matched to the tiny model geometry.
func smallGen() scene.GenConfig {
	cfg := scene.DefaultGenConfig()
	cfg.MaxObjects = 2
	return cfg
}

// smallModelCfg is a reduced student for fast tests: 32px images, 4x4 grid.
func smallModelCfg() vit.Config {
	return vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2,
		Classes: int(scene.NumClasses),
	}
}

func quickTrainCfg(epochs int) TrainConfig {
	cfg := DefaultTrainConfig()
	cfg.Epochs = epochs
	cfg.BatchSize = 8
	return cfg
}

func TestTrainConfigValidate(t *testing.T) {
	bad := []TrainConfig{
		{},
		{Epochs: 1, BatchSize: 0, LR: 1e-3},
		{Epochs: 1, BatchSize: 1, LR: 0},
	}
	for i, c := range bad {
		if err := c.Validate(); err == nil {
			t.Errorf("bad config %d passed", i)
		}
	}
	if err := DefaultTrainConfig().Validate(); err != nil {
		t.Errorf("default invalid: %v", err)
	}
}

func TestTrainReducesLossAndLearns(t *testing.T) {
	rng := tensor.NewRNG(1)
	task, _ := dataset.TaskByName("inspect")
	set := dataset.Build(task, 48, smallGen(), rng)
	m := vit.New(smallModelCfg(), tensor.NewRNG(2))
	rep, err := Train(m, set, quickTrainCfg(10))
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 10*6 {
		t.Errorf("steps = %d", rep.Steps)
	}
	if rep.FinalLoss() >= rep.EpochLoss[0] {
		t.Errorf("loss did not decrease: %v -> %v", rep.EpochLoss[0], rep.FinalLoss())
	}
	// The trained model should beat chance on its own training data.
	s := eval.Run(eval.DetectorOf(m, eval.DefaultThresholds()), set,
		dataset.ClassInts(task.Classes), eval.DefaultThresholds())
	if s.Accuracy < 0.25 {
		t.Errorf("train-set accuracy %v too low after training", s.Accuracy)
	}
}

func TestTrainAugmentDoublesSteps(t *testing.T) {
	rng := tensor.NewRNG(77)
	task, _ := dataset.TaskByName("harvest")
	set := dataset.Build(task, 16, smallGen(), rng)
	cfg := quickTrainCfg(2)
	m1 := vit.New(smallModelCfg(), tensor.NewRNG(1))
	rep1, err := Train(m1, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.Augment = true
	m2 := vit.New(smallModelCfg(), tensor.NewRNG(1))
	rep2, err := Train(m2, set, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep2.Steps != 2*rep1.Steps {
		t.Errorf("augmented steps %d, want %d", rep2.Steps, 2*rep1.Steps)
	}
}

func TestTrainErrors(t *testing.T) {
	m := vit.New(smallModelCfg(), tensor.NewRNG(1))
	if _, err := Train(m, dataset.Set{}, quickTrainCfg(1)); err == nil {
		t.Error("empty dataset should error")
	}
	if _, err := Train(m, dataset.Set{Examples: make([]dataset.Example, 1)}, TrainConfig{}); err == nil {
		t.Error("invalid config should error")
	}
}

func TestDistillConfigValidate(t *testing.T) {
	good := DefaultDistillConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := good
	bad.Temp = 0
	if err := bad.Validate(); err == nil {
		t.Error("temp 0 should fail")
	}
	bad = good
	bad.Alpha = 1.5
	if err := bad.Validate(); err == nil {
		t.Error("alpha > 1 should fail")
	}
	bad = good
	bad.FeatureWeight = -1
	if err := bad.Validate(); err == nil {
		t.Error("negative weight should fail")
	}
}

func TestDistillMismatchErrors(t *testing.T) {
	teacher := vit.New(smallModelCfg(), tensor.NewRNG(1))
	wrongClasses := smallModelCfg()
	wrongClasses.Classes = 3
	s1 := vit.New(wrongClasses, tensor.NewRNG(2))
	set := dataset.Set{Examples: make([]dataset.Example, 1)}
	if _, err := Distill(teacher, s1, set, DefaultDistillConfig()); err == nil {
		t.Error("class mismatch should error")
	}
	wrongGeom := smallModelCfg()
	wrongGeom.ImageSize = 16
	wrongGeom.PatchSize = 4
	s2 := vit.New(wrongGeom, tensor.NewRNG(3))
	if _, err := Distill(teacher, s2, set, DefaultDistillConfig()); err == nil {
		t.Error("geometry mismatch should error")
	}
}

// TestDistillTransfersKnowledge is the core distillation test: a student
// distilled from a trained teacher must substantially outperform an
// untrained student, approaching teacher quality on the task.
func TestDistillTransfersKnowledge(t *testing.T) {
	rng := tensor.NewRNG(10)
	task, _ := dataset.TaskByName("inspect")
	trainSet := dataset.Build(task, 64, smallGen(), rng)
	valSet := dataset.Build(task, 24, smallGen(), rng)

	teacherCfg := smallModelCfg()
	teacherCfg.Dim = 48
	teacherCfg.Depth = 3
	teacher := vit.New(teacherCfg, tensor.NewRNG(11))
	if _, err := Train(teacher, trainSet, quickTrainCfg(14)); err != nil {
		t.Fatal(err)
	}

	student := vit.New(smallModelCfg(), tensor.NewRNG(12))
	dcfg := DefaultDistillConfig()
	dcfg.Train = quickTrainCfg(14)
	rep, err := Distill(teacher, student, trainSet, dcfg)
	if err != nil {
		t.Fatal(err)
	}
	if rep.FinalLoss() >= rep.EpochLoss[0] {
		t.Errorf("distill loss did not decrease: %v", rep.EpochLoss)
	}

	th := eval.DefaultThresholds()
	classes := dataset.ClassInts(task.Classes)
	teacherAcc := eval.Run(eval.DetectorOf(teacher, th), valSet, classes, th).Accuracy
	studentAcc := eval.Run(eval.DetectorOf(student, th), valSet, classes, th).Accuracy
	fresh := vit.New(smallModelCfg(), tensor.NewRNG(13))
	freshAcc := eval.Run(eval.DetectorOf(fresh, th), valSet, classes, th).Accuracy

	if studentAcc <= freshAcc {
		t.Errorf("distilled student (%.3f) no better than untrained (%.3f)", studentAcc, freshAcc)
	}
	if studentAcc < teacherAcc*0.5 {
		t.Errorf("student (%.3f) far below teacher (%.3f)", studentAcc, teacherAcc)
	}
}

func TestDistillWithoutFeatureLoss(t *testing.T) {
	rng := tensor.NewRNG(20)
	task, _ := dataset.TaskByName("harvest")
	set := dataset.Build(task, 16, smallGen(), rng)
	teacher := vit.New(smallModelCfg(), tensor.NewRNG(21))
	student := vit.New(smallModelCfg(), tensor.NewRNG(22))
	cfg := DefaultDistillConfig()
	cfg.Train = quickTrainCfg(2)
	cfg.FeatureWeight = 0 // soft-only ablation path
	if _, err := Distill(teacher, student, set, cfg); err != nil {
		t.Fatal(err)
	}
}

func TestApplyClassPriors(t *testing.T) {
	m := vit.New(smallModelCfg(), tensor.NewRNG(30))
	priors := make([]float64, m.Cfg.Classes)
	priors[int(scene.Gear)] = 1
	// Leave everything else ~0 -> masked.
	detBiasBefore := m.Det.Bias.W.Data[5+int(scene.Gear)]
	if err := ApplyClassPriors(m, priors, 1); err != nil {
		t.Fatal(err)
	}
	gearBias := m.Det.Bias.W.Data[5+int(scene.Gear)]
	carBias := m.Det.Bias.W.Data[5+int(scene.Car)]
	if gearBias-detBiasBefore < -0.01 {
		t.Errorf("relevant class bias dropped: %v", gearBias-detBiasBefore)
	}
	if carBias > gearBias-3 {
		t.Errorf("irrelevant class not masked: car=%v gear=%v", carBias, gearBias)
	}
	// Validation.
	if err := ApplyClassPriors(m, priors[:3], 1); err == nil {
		t.Error("wrong prior length should error")
	}
	priors[0] = 2
	if err := ApplyClassPriors(m, priors, 1); err == nil {
		t.Error("out-of-range prior should error")
	}
}

// TestFewShotKGBeatsNoKG reproduces the core of experiment E4 at test
// scale: with a handful of support samples, KG-conditioned adaptation must
// beat unconditioned fine-tuning of the same base model.
func TestFewShotKGBeatsNoKG(t *testing.T) {
	rng := tensor.NewRNG(40)
	tasks := dataset.StandardTasks()
	// Base generalist trained on three tasks; adapt to the fourth (harvest).
	target, _ := dataset.TaskByName("harvest")
	var pretrain []dataset.Task
	for _, task := range tasks {
		if task.Name != target.Name {
			pretrain = append(pretrain, task)
		}
	}
	base := vit.New(smallModelCfg(), tensor.NewRNG(41))
	mixed := dataset.BuildMixed(pretrain, 20, smallGen(), rng)
	if _, err := Train(base, mixed, quickTrainCfg(10)); err != nil {
		t.Fatal(err)
	}

	// KG priors for the target task from the simulated LLM.
	g, err := llm.New(llm.DefaultOptions()).Generate(target.Name, target.Description)
	if err != nil {
		t.Fatal(err)
	}
	priors := kg.ClassPriors(g, "task:"+target.Name)

	support := dataset.BuildFewShot(target, 4, smallGen(), tensor.NewRNG(42))
	valSet := dataset.Build(target, 24, smallGen(), tensor.NewRNG(43))
	th := eval.DefaultThresholds()
	classes := dataset.ClassInts(target.Classes)

	adapt := func(strength float32, seed uint64) float64 {
		m := vit.New(smallModelCfg(), tensor.NewRNG(seed))
		if err := base.CloneWeightsTo(m); err != nil {
			t.Fatal(err)
		}
		cfg := DefaultFewShotConfig()
		cfg.Train.Epochs = 8
		cfg.PriorStrength = strength
		if _, err := FewShotAdapt(m, priors, support, cfg); err != nil {
			t.Fatal(err)
		}
		return eval.Run(eval.DetectorOf(m, th), valSet, classes, th).Accuracy
	}

	withKG := adapt(1, 50)
	withoutKG := adapt(0, 50)
	if withKG < withoutKG {
		t.Errorf("KG-guided adaptation (%.3f) should not lose to plain fine-tune (%.3f)", withKG, withoutKG)
	}
}

func TestFewShotZeroShot(t *testing.T) {
	m := vit.New(smallModelCfg(), tensor.NewRNG(60))
	priors := make([]float64, m.Cfg.Classes)
	rep, err := FewShotAdapt(m, priors, dataset.Set{}, DefaultFewShotConfig())
	if err != nil {
		t.Fatal(err)
	}
	if rep.Steps != 0 {
		t.Error("zero-shot adaptation should not train")
	}
}
