// Package distill implements iTask's model-production pipeline: supervised
// training of the multi-task teacher, teacher→student knowledge distillation
// for the task-specific configuration, and knowledge-graph-guided few-shot
// adaptation. All training is deterministic from the config seed.
package distill

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/nn"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// TrainConfig controls a supervised training run.
type TrainConfig struct {
	Epochs    int
	BatchSize int
	LR        float32
	// FloorLR is the cosine schedule's final learning rate.
	FloorLR float32
	// WarmupSteps is the linear LR warmup length.
	WarmupSteps int
	// WeightDecay is AdamW decoupled decay.
	WeightDecay float32
	// ClipNorm caps the global gradient norm (0 disables clipping).
	ClipNorm float32
	// DetWeights balances the detection loss terms.
	DetWeights vit.DetLossWeights
	// ClsWeight scales the auxiliary scene-classification loss.
	ClsWeight float32
	// Seed drives batch shuffling.
	Seed uint64
	// Augment, when true, doubles the training set with horizontal flips
	// before training (label-exact for the synthetic vocabulary).
	Augment bool
	// Log, when non-nil, receives one line per epoch.
	Log io.Writer
}

// DefaultTrainConfig returns the settings used for teachers and students in
// the experiments.
func DefaultTrainConfig() TrainConfig {
	return TrainConfig{
		Epochs:      20,
		BatchSize:   8,
		LR:          3e-3,
		FloorLR:     3e-4,
		WarmupSteps: 20,
		WeightDecay: 1e-4,
		ClipNorm:    5,
		DetWeights:  vit.DefaultDetLossWeights(),
		ClsWeight:   0.2,
		Seed:        1,
	}
}

// Validate checks the configuration.
func (c TrainConfig) Validate() error {
	switch {
	case c.Epochs <= 0:
		return fmt.Errorf("distill: epochs %d", c.Epochs)
	case c.BatchSize <= 0:
		return fmt.Errorf("distill: batch size %d", c.BatchSize)
	case c.LR <= 0:
		return fmt.Errorf("distill: lr %v", c.LR)
	}
	return nil
}

// Report summarizes a training run.
type Report struct {
	EpochLoss []float32
	Steps     int
}

// FinalLoss returns the last epoch's mean loss.
func (r Report) FinalLoss() float32 {
	if len(r.EpochLoss) == 0 {
		return 0
	}
	return r.EpochLoss[len(r.EpochLoss)-1]
}

// Train runs supervised detection training of m on set.
func Train(m *vit.Model, set dataset.Set, cfg TrainConfig) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if set.Len() == 0 {
		return Report{}, fmt.Errorf("distill: empty dataset")
	}
	if cfg.Augment {
		set = dataset.Augment(set)
	}
	rng := tensor.NewRNG(cfg.Seed)
	opt := nn.NewAdamW(cfg.LR, cfg.WeightDecay)
	stepsPerEpoch := (set.Len() + cfg.BatchSize - 1) / cfg.BatchSize
	total := stepsPerEpoch * cfg.Epochs
	var rep Report
	step := 0
	for epoch := 0; epoch < cfg.Epochs; epoch++ {
		var epochLoss float64
		batches := set.Batches(cfg.BatchSize, rng)
		for _, batch := range batches {
			opt.SetLR(nn.CosineSchedule(cfg.LR, cfg.FloorLR, cfg.WarmupSteps, total, step))
			loss := trainStep(m, batch, cfg, opt)
			epochLoss += float64(loss)
			step++
		}
		mean := float32(epochLoss / float64(len(batches)))
		rep.EpochLoss = append(rep.EpochLoss, mean)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "epoch %3d  loss %.4f  lr %.5f\n", epoch, mean, opt.LR())
		}
	}
	rep.Steps = step
	return rep, nil
}

// trainStep runs one optimizer step on one minibatch and returns its loss.
func trainStep(m *vit.Model, examples []dataset.Example, cfg TrainConfig, opt nn.Optimizer) float32 {
	b := dataset.Pack(m.Cfg, examples)
	feats := m.Forward(b.Patches, true)
	det := m.DetHead(feats, true)
	loss, dDet := vit.DetLoss(m.Cfg, det, b.Targets, cfg.DetWeights)
	var dCls *tensor.Tensor
	if cfg.ClsWeight > 0 {
		cls := m.ClsHead(feats, true)
		clsLoss, g := nn.CrossEntropy(cls, b.SceneLabels)
		loss += cfg.ClsWeight * clsLoss
		g.ScaleInPlace(cfg.ClsWeight)
		dCls = g
	}
	m.Backward(dDet, dCls)
	if cfg.ClipNorm > 0 {
		nn.ClipGradNorm(m.Params(), cfg.ClipNorm)
	}
	opt.Step(m.Params())
	return loss
}
