package distill

import (
	"fmt"
	"math"

	"itask/internal/dataset"
	"itask/internal/vit"
)

// ApplyClassPriors conditions a model on a task by folding knowledge-graph
// class priors into both heads' class biases:
//
//	bias_c += strength * log(prior_c + eps)
//
// A prior of ~1 leaves the bias unchanged; a prior of ~0 pushes the class
// ~strength*7 logits down, effectively masking it. This is the zero-shot
// mechanism that lets the detector "identify objects based on high-level
// characteristics" before it has seen a single sample.
func ApplyClassPriors(m *vit.Model, priors []float64, strength float32) error {
	if len(priors) != m.Cfg.Classes {
		return fmt.Errorf("distill: %d priors for %d classes", len(priors), m.Cfg.Classes)
	}
	const eps = 1e-3
	for c, p := range priors {
		if p < 0 || p > 1 {
			return fmt.Errorf("distill: prior[%d] = %v outside [0,1]", c, p)
		}
		adj := strength * float32(math.Log(p+eps))
		// Detection head: class logits start at column 5.
		m.Det.Bias.W.Data[5+c] += adj
		// Classification head.
		m.Cls.Bias.W.Data[c] += adj
	}
	return nil
}

// FewShotConfig controls knowledge-graph-guided few-shot adaptation.
type FewShotConfig struct {
	Train TrainConfig
	// PriorStrength scales the KG bias conditioning (0 = no KG, the
	// ablation baseline).
	PriorStrength float32
}

// DefaultFewShotConfig returns the adaptation settings of experiment E4:
// a short, low-LR fine-tune on the few-shot set after prior conditioning.
func DefaultFewShotConfig() FewShotConfig {
	tc := DefaultTrainConfig()
	tc.Epochs = 12
	tc.BatchSize = 4
	tc.LR = 1e-3
	tc.WarmupSteps = 5
	return FewShotConfig{Train: tc, PriorStrength: 1}
}

// FewShotAdapt adapts model m to a new task given KG class priors and a
// (typically tiny) support set. With PriorStrength 0 this degrades to plain
// fine-tuning — the no-KG baseline of the few-shot experiment.
func FewShotAdapt(m *vit.Model, priors []float64, support dataset.Set, cfg FewShotConfig) (Report, error) {
	if cfg.PriorStrength > 0 {
		if err := ApplyClassPriors(m, priors, cfg.PriorStrength); err != nil {
			return Report{}, err
		}
	}
	if support.Len() == 0 {
		// Zero-shot: prior conditioning only.
		return Report{}, nil
	}
	return Train(m, support, cfg.Train)
}
