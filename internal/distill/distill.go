package distill

import (
	"fmt"
	"io"

	"itask/internal/dataset"
	"itask/internal/nn"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// DistillConfig controls teacher→student knowledge distillation.
type DistillConfig struct {
	Train TrainConfig
	// Temp is the softmax temperature for soft class targets.
	Temp float32
	// Alpha blends soft (teacher) vs hard (label) supervision:
	// loss = alpha*soft + (1-alpha)*hard.
	Alpha float32
	// SoftWeight scales the whole response-distillation term.
	SoftWeight float32
	// FeatureWeight scales the pooled feature-matching loss (0 disables);
	// a learned projection aligns the student and teacher widths.
	FeatureWeight float32
	// Log receives one line per epoch when non-nil.
	Log io.Writer
}

// DefaultDistillConfig returns the distillation settings used in the
// experiments (both soft and feature losses on).
func DefaultDistillConfig() DistillConfig {
	tc := DefaultTrainConfig()
	tc.Epochs = 20
	return DistillConfig{
		Train:         tc,
		Temp:          2,
		Alpha:         0.5,
		SoftWeight:    1,
		FeatureWeight: 0.5,
	}
}

// Validate checks the configuration.
func (c DistillConfig) Validate() error {
	if err := c.Train.Validate(); err != nil {
		return err
	}
	switch {
	case c.Temp <= 0:
		return fmt.Errorf("distill: temperature %v", c.Temp)
	case c.Alpha < 0 || c.Alpha > 1:
		return fmt.Errorf("distill: alpha %v outside [0,1]", c.Alpha)
	case c.SoftWeight < 0 || c.FeatureWeight < 0:
		return fmt.Errorf("distill: negative loss weight")
	}
	return nil
}

// Distill trains student to mimic teacher on set. The teacher is run in
// inference mode and never modified. Returns the training report.
//
// The response-distillation term matches, per token, the student's class
// distribution (tempered KL), objectness (soft BCE), and box geometry
// (sigmoid-space MSE weighted by teacher objectness). The optional feature
// term matches mean-pooled trunk features through a learned projection.
func Distill(teacher, student *vit.Model, set dataset.Set, cfg DistillConfig) (Report, error) {
	if err := cfg.Validate(); err != nil {
		return Report{}, err
	}
	if set.Len() == 0 {
		return Report{}, fmt.Errorf("distill: empty dataset")
	}
	if teacher.Cfg.Classes != student.Cfg.Classes {
		return Report{}, fmt.Errorf("distill: class count mismatch teacher=%d student=%d",
			teacher.Cfg.Classes, student.Cfg.Classes)
	}
	if teacher.Cfg.Tokens() != student.Cfg.Tokens() || teacher.Cfg.ImageSize != student.Cfg.ImageSize {
		return Report{}, fmt.Errorf("distill: teacher/student geometry mismatch")
	}
	rng := tensor.NewRNG(cfg.Train.Seed + 1000)
	var proj *nn.Linear
	params := student.Params()
	if cfg.FeatureWeight > 0 {
		proj = nn.NewLinear("distill.proj", student.Cfg.Dim, teacher.Cfg.Dim, rng)
		params = append(params, proj.Params()...)
	}
	opt := nn.NewAdamW(cfg.Train.LR, cfg.Train.WeightDecay)
	stepsPerEpoch := (set.Len() + cfg.Train.BatchSize - 1) / cfg.Train.BatchSize
	total := stepsPerEpoch * cfg.Train.Epochs
	var rep Report
	step := 0
	for epoch := 0; epoch < cfg.Train.Epochs; epoch++ {
		var epochLoss float64
		batches := set.Batches(cfg.Train.BatchSize, rng)
		for _, batch := range batches {
			opt.SetLR(nn.CosineSchedule(cfg.Train.LR, cfg.Train.FloorLR, cfg.Train.WarmupSteps, total, step))
			loss := distillStep(teacher, student, proj, batch, cfg, opt, params)
			epochLoss += float64(loss)
			step++
		}
		mean := float32(epochLoss / float64(len(batches)))
		rep.EpochLoss = append(rep.EpochLoss, mean)
		if cfg.Log != nil {
			fmt.Fprintf(cfg.Log, "distill epoch %3d  loss %.4f\n", epoch, mean)
		}
	}
	rep.Steps = step
	return rep, nil
}

func distillStep(teacher, student *vit.Model, proj *nn.Linear, examples []dataset.Example,
	cfg DistillConfig, opt nn.Optimizer, params []*nn.Param) float32 {

	b := dataset.Pack(student.Cfg, examples)
	// Teacher pass (inference mode: no caches, no grads).
	tFeats := teacher.Forward(b.Patches, false)
	tDet := teacher.DetHead(tFeats, false)

	// Student pass.
	sFeats := student.Forward(b.Patches, true)
	sDet := student.DetHead(sFeats, true)

	// Hard supervision.
	hardLoss, dDet := vit.DetLoss(student.Cfg, sDet, b.Targets, cfg.Train.DetWeights)
	dDet.ScaleInPlace(1 - cfg.Alpha)
	loss := (1 - cfg.Alpha) * hardLoss

	// Soft response distillation.
	softLoss, dSoft := responseLoss(student.Cfg, sDet, tDet, cfg.Temp)
	dSoft.ScaleInPlace(cfg.Alpha * cfg.SoftWeight)
	dDet.AddInPlace(dSoft)
	loss += cfg.Alpha * cfg.SoftWeight * softLoss

	// Feature matching through the learned projection.
	var dFeats *tensor.Tensor
	if proj != nil && cfg.FeatureWeight > 0 {
		sPooled := student.PoolFeats(sFeats)
		tPooled := teacher.PoolFeats(tFeats)
		projected := proj.Forward(sPooled, true)
		featLoss, dProj := nn.MSE(projected, tPooled)
		dProj.ScaleInPlace(cfg.FeatureWeight)
		dPooled := proj.Backward(dProj) // (B, studentDim)
		loss += cfg.FeatureWeight * featLoss
		// Spread pooled gradient uniformly back over tokens.
		t := student.Cfg.Tokens()
		d := student.Cfg.Dim
		bsz := dPooled.Shape[0]
		dFeats = tensor.New(bsz*t, d)
		inv := float32(1) / float32(t)
		for bi := 0; bi < bsz; bi++ {
			prow := dPooled.Data[bi*d : (bi+1)*d]
			for ti := 0; ti < t; ti++ {
				frow := dFeats.Data[(bi*t+ti)*d : (bi*t+ti+1)*d]
				for j, v := range prow {
					frow[j] += v * inv
				}
			}
		}
	}

	student.BackwardExtra(dDet, nil, dFeats)
	if cfg.Train.ClipNorm > 0 {
		nn.ClipGradNorm(params, cfg.Train.ClipNorm)
	}
	opt.Step(params)
	return loss
}

// responseLoss computes the per-token response-distillation loss between the
// student's and teacher's raw detection outputs, returning the loss and its
// gradient w.r.t. the student output.
func responseLoss(cfg vit.Config, sDet, tDet *tensor.Tensor, temp float32) (float32, *tensor.Tensor) {
	rows := sDet.Shape[0]
	width := cfg.DetWidth()
	c := cfg.Classes
	grad := tensor.New(rows, width)

	// Class slice: tempered KL.
	sCls := tensor.New(rows, c)
	tCls := tensor.New(rows, c)
	for r := 0; r < rows; r++ {
		copy(sCls.Data[r*c:(r+1)*c], sDet.Data[r*width+5:(r+1)*width])
		copy(tCls.Data[r*c:(r+1)*c], tDet.Data[r*width+5:(r+1)*width])
	}
	klLoss, dKL := nn.KLDistill(sCls, tCls, temp)
	for r := 0; r < rows; r++ {
		copy(grad.Data[r*width+5:(r+1)*width], dKL.Data[r*c:(r+1)*c])
	}

	// Objectness: BCE against the teacher's probability.
	sObj := tensor.New(rows)
	tObj := tensor.New(rows)
	for r := 0; r < rows; r++ {
		sObj.Data[r] = sDet.Data[r*width]
		tObj.Data[r] = nn.Sigmoid(tDet.Data[r*width])
	}
	objLoss, dObj := nn.BCEWithLogits(sObj, tObj, nil)
	for r := 0; r < rows; r++ {
		grad.Data[r*width] += dObj.Data[r]
	}

	// Box geometry: sigmoid-space MSE weighted by teacher objectness, so the
	// student only copies geometry where the teacher sees something.
	var boxLoss float64
	var wsum float64
	for r := 0; r < rows; r++ {
		w := tObj.Data[r]
		if w < 0.05 {
			continue
		}
		wsum += float64(w)
	}
	if wsum > 0 {
		for r := 0; r < rows; r++ {
			w := tObj.Data[r]
			if w < 0.05 {
				continue
			}
			for k := 1; k <= 4; k++ {
				sv := nn.Sigmoid(sDet.Data[r*width+k])
				tv := nn.Sigmoid(tDet.Data[r*width+k])
				d := sv - tv
				boxLoss += float64(w) * float64(d) * float64(d)
				grad.Data[r*width+k] += float32(float64(w)/wsum) * 2 * d * sv * (1 - sv)
			}
		}
		boxLoss /= wsum
	}

	return klLoss + objLoss + float32(boxLoss), grad
}
