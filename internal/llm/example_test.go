package llm_test

import (
	"fmt"

	"itask/internal/kg"
	"itask/internal/llm"
	"itask/internal/scene"
)

// ExampleSimLLM_Generate shows the front half of the iTask pipeline: a
// natural-language mission becomes a knowledge graph, and the graph yields
// per-class relevance priors.
func ExampleSimLLM_Generate() {
	gen := llm.New(llm.DefaultOptions())
	g, err := gen.Generate("harvest", "Find ripe apples, ignore leaves")
	if err != nil {
		fmt.Println(err)
		return
	}
	priors := kg.ClassPriors(g, "task:harvest")
	fmt.Printf("ripe_fruit relevant: %v\n", priors[scene.RipeFruit] > 0.5)
	fmt.Printf("leaf_cluster masked: %v\n", priors[scene.LeafCluster] == 0)
	fmt.Printf("car relevant: %v\n", priors[scene.Car] > 0.5)
	// Output:
	// ripe_fruit relevant: true
	// leaf_cluster masked: true
	// car relevant: false
}
