// Package llm implements the simulated large language model that turns a
// natural-language mission description into an iTask knowledge graph.
//
// Substitution note (documented in DESIGN.md): the paper uses a real LLM to
// generate the abstract knowledge graph; the detector only ever consumes the
// graph. This package produces the same kind of graph deterministically: a
// lexicon of concepts and attribute words, a small rule engine for
// target/avoid scoping and adjective attachment, and a character-trigram
// fuzzy matcher that generalizes to unseen word forms the way an LLM's
// embedding space would (morphological variants, close synonyms).
package llm

// AttrAssertion is one attribute the lexicon asserts about a concept.
type AttrAssertion struct {
	Family string  // "shape" | "color" | "texture" | "size"
	Value  string  // renderer vocabulary value, e.g. "disc"
	Weight float64 // confidence in [0,1]
}

// ConceptTemplate is the lexicon's prior knowledge about a concept word: the
// attribute signature an LLM would associate with it.
type ConceptTemplate struct {
	Name  string
	Attrs []AttrAssertion
}

// conceptLexicon maps concept words (including synonyms) to templates.
// Weights encode how discriminative the association is.
var conceptLexicon = map[string]ConceptTemplate{
	// --- driving ---
	"vehicle": {Name: "vehicle", Attrs: []AttrAssertion{
		{"shape", "square", 0.9}, {"size", "medium", 0.6}, {"size", "large", 0.6},
	}},
	"car": {Name: "car", Attrs: []AttrAssertion{
		{"shape", "square", 0.95}, {"color", "blue", 0.8}, {"size", "medium", 0.8},
	}},
	"truck": {Name: "truck", Attrs: []AttrAssertion{
		{"shape", "square", 0.95}, {"color", "gray", 0.8}, {"size", "large", 0.9},
	}},
	"pedestrian": {Name: "pedestrian", Attrs: []AttrAssertion{
		{"shape", "triangle", 0.9}, {"color", "orange", 0.8}, {"texture", "solid", 0.6}, {"size", "medium", 0.7},
	}},
	"person": {Name: "pedestrian", Attrs: []AttrAssertion{
		{"shape", "triangle", 0.9}, {"color", "orange", 0.8}, {"size", "medium", 0.7},
	}},
	"cyclist": {Name: "cyclist", Attrs: []AttrAssertion{
		{"shape", "diamond", 0.9}, {"color", "cyan", 0.85}, {"size", "small", 0.8},
	}},
	"bicycle": {Name: "cyclist", Attrs: []AttrAssertion{
		{"shape", "diamond", 0.9}, {"color", "cyan", 0.85}, {"size", "small", 0.8},
	}},
	"cone": {Name: "traffic_cone", Attrs: []AttrAssertion{
		{"shape", "triangle", 0.9}, {"color", "yellow", 0.85}, {"texture", "striped", 0.9}, {"size", "small", 0.8},
	}},
	// --- medical ---
	"lesion": {Name: "lesion", Attrs: []AttrAssertion{
		{"shape", "disc", 0.9}, {"color", "red", 0.85}, {"texture", "dotted", 0.9}, {"size", "small", 0.85},
	}},
	"tumor": {Name: "lesion", Attrs: []AttrAssertion{
		{"shape", "disc", 0.9}, {"color", "red", 0.85}, {"texture", "dotted", 0.9}, {"size", "small", 0.85},
	}},
	"anomaly": {Name: "lesion", Attrs: []AttrAssertion{
		{"shape", "disc", 0.7}, {"color", "red", 0.7}, {"texture", "dotted", 0.7}, {"size", "small", 0.6},
	}},
	"instrument": {Name: "instrument", Attrs: []AttrAssertion{
		{"shape", "cross", 0.9}, {"color", "white", 0.85}, {"size", "medium", 0.7},
	}},
	"scalpel": {Name: "instrument", Attrs: []AttrAssertion{
		{"shape", "cross", 0.9}, {"color", "white", 0.85}, {"size", "medium", 0.7},
	}},
	"vial": {Name: "vial", Attrs: []AttrAssertion{
		{"shape", "square", 0.9}, {"color", "purple", 0.9}, {"size", "small", 0.85},
	}},
	"sample": {Name: "vial", Attrs: []AttrAssertion{
		{"shape", "square", 0.8}, {"color", "purple", 0.8}, {"size", "small", 0.8},
	}},
	// --- industrial ---
	"gear": {Name: "gear", Attrs: []AttrAssertion{
		{"shape", "ring", 0.95}, {"color", "gray", 0.8}, {"size", "medium", 0.8},
	}},
	"cog": {Name: "gear", Attrs: []AttrAssertion{
		{"shape", "ring", 0.95}, {"color", "gray", 0.8}, {"size", "medium", 0.8},
	}},
	"bolt": {Name: "bolt", Attrs: []AttrAssertion{
		{"shape", "disc", 0.85}, {"color", "gray", 0.85}, {"size", "small", 0.9},
	}},
	"screw": {Name: "bolt", Attrs: []AttrAssertion{
		{"shape", "disc", 0.85}, {"color", "gray", 0.85}, {"size", "small", 0.9},
	}},
	"crack": {Name: "crack_defect", Attrs: []AttrAssertion{
		{"shape", "cross", 0.85}, {"color", "red", 0.8}, {"texture", "striped", 0.85}, {"size", "medium", 0.7},
	}},
	"defect": {Name: "crack_defect", Attrs: []AttrAssertion{
		{"shape", "cross", 0.8}, {"color", "red", 0.75}, {"texture", "striped", 0.8}, {"size", "medium", 0.6},
	}},
	"damage": {Name: "crack_defect", Attrs: []AttrAssertion{
		{"shape", "cross", 0.75}, {"color", "red", 0.7}, {"texture", "striped", 0.75}, {"size", "medium", 0.6},
	}},
	// --- orchard ---
	"fruit": {Name: "fruit", Attrs: []AttrAssertion{
		{"shape", "disc", 0.9}, {"texture", "solid", 0.7}, {"size", "medium", 0.8},
	}},
	"apple": {Name: "fruit", Attrs: []AttrAssertion{
		{"shape", "disc", 0.95}, {"color", "red", 0.8}, {"texture", "solid", 0.8}, {"size", "medium", 0.8},
	}},
	"leaf": {Name: "foliage", Attrs: []AttrAssertion{
		{"shape", "diamond", 0.85}, {"color", "green", 0.9}, {"texture", "dotted", 0.8}, {"size", "medium", 0.6},
	}},
	// "leave" is the (imperfect) stem of "leaves"; alias it to foliage.
	"leave": {Name: "foliage", Attrs: []AttrAssertion{
		{"shape", "diamond", 0.85}, {"color", "green", 0.9}, {"texture", "dotted", 0.8}, {"size", "medium", 0.6},
	}},
	"vegetation": {Name: "foliage", Attrs: []AttrAssertion{
		{"shape", "diamond", 0.8}, {"color", "green", 0.9}, {"texture", "dotted", 0.7},
	}},
	"foliage": {Name: "foliage", Attrs: []AttrAssertion{
		{"shape", "diamond", 0.8}, {"color", "green", 0.9}, {"texture", "dotted", 0.7},
	}},
}

// adjectiveLexicon maps modifier words to attribute assertions applied to
// the next concept in the sentence.
var adjectiveLexicon = map[string]AttrAssertion{
	// colors
	"red":     {"color", "red", 0.95},
	"crimson": {"color", "red", 0.9},
	"green":   {"color", "green", 0.95},
	"blue":    {"color", "blue", 0.95},
	"yellow":  {"color", "yellow", 0.95},
	"orange":  {"color", "orange", 0.95},
	"purple":  {"color", "purple", 0.95},
	"violet":  {"color", "purple", 0.9},
	"white":   {"color", "white", 0.95},
	"gray":    {"color", "gray", 0.95},
	"grey":    {"color", "gray", 0.95},
	"cyan":    {"color", "cyan", 0.95},
	"ripe":    {"color", "red", 0.9},
	"unripe":  {"color", "green", 0.9},
	// sizes
	"small":  {"size", "small", 0.9},
	"tiny":   {"size", "small", 0.95},
	"little": {"size", "small", 0.85},
	"medium": {"size", "medium", 0.9},
	"large":  {"size", "large", 0.9},
	"big":    {"size", "large", 0.9},
	"huge":   {"size", "large", 0.95},
	// textures
	"striped": {"texture", "striped", 0.95},
	"banded":  {"texture", "striped", 0.85},
	"dotted":  {"texture", "dotted", 0.95},
	"spotted": {"texture", "dotted", 0.9},
	"solid":   {"texture", "solid", 0.9},
	"plain":   {"texture", "solid", 0.8},
	// shapes
	"round":      {"shape", "disc", 0.9},
	"circular":   {"shape", "disc", 0.9},
	"square":     {"shape", "square", 0.95},
	"boxy":       {"shape", "square", 0.85},
	"triangular": {"shape", "triangle", 0.9},
	"annular":    {"shape", "ring", 0.9},
}

// negationWords flip the parser into avoid mode for subsequent concepts.
var negationWords = map[string]bool{
	"ignore": true, "avoid": true, "except": true, "not": true,
	"without": true, "exclude": true, "excluding": true, "skip": true,
}

// assertionWords flip the parser back into target mode.
var assertionWords = map[string]bool{
	"detect": true, "find": true, "locate": true, "report": true,
	"identify": true, "spot": true, "flag": true, "track": true,
	"monitor": true, "count": true, "inspect": true,
}

// stopWords are skipped entirely and also reset pending adjectives at
// clause boundaries.
var clauseBreakers = map[string]bool{
	"and": false, "or": false, "the": false, "a": false, "an": false,
	"all": false, "any": false, "of": false, "in": false, "on": false,
	"for": false, "with": false, "near": false, "to": false, "is": false,
	"are": false, "that": false, "which": false, "then": false,
}
