package llm

import (
	"strings"
	"testing"

	"itask/internal/kg"
	"itask/internal/scene"
)

func TestTokenize(t *testing.T) {
	toks := Tokenize("Detect red cars, ignore the green leaves.")
	want := []string{"detect", "red", "cars", "|", "ignore", "the", "green", "leaves", "|"}
	if len(toks) != len(want) {
		t.Fatalf("tokens = %v", toks)
	}
	for i, w := range want {
		if toks[i] != w {
			t.Fatalf("token %d = %q, want %q (%v)", i, toks[i], w, toks)
		}
	}
}

func TestStem(t *testing.T) {
	cases := map[string]string{
		"cars":        "car",
		"cones":       "cone",
		"boxes":       "box",
		"leaves":      "leave", // imperfect stem; covered by an explicit lexicon synonym
		"anomalies":   "anomaly",
		"tracking":    "track",
		"damaged":     "damag",
		"gear":        "gear",
		"grass":       "grass", // -ss preserved
		"vehicles":    "vehicle",
		"instruments": "instrument",
	}
	for in, want := range cases {
		if got := stem(in); got != want {
			t.Errorf("stem(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestTrigramSimProperties(t *testing.T) {
	if s := trigramSim("vehicle", "vehicle"); s < 0.999 {
		t.Errorf("self similarity = %v", s)
	}
	if s := trigramSim("vehicle", "vehicl"); s < 0.6 {
		t.Errorf("near-variant similarity = %v, want high", s)
	}
	if s := trigramSim("vehicle", "xyzzy"); s > 0.1 {
		t.Errorf("unrelated similarity = %v, want ~0", s)
	}
	// Symmetry.
	if trigramSim("gear", "gears") != trigramSim("gears", "gear") {
		t.Error("trigram similarity not symmetric")
	}
}

func TestGenerateSimpleTask(t *testing.T) {
	l := New(DefaultOptions())
	g, err := l.Generate("patrol", "Detect cars and trucks on the road")
	if err != nil {
		t.Fatal(err)
	}
	if _, ok := g.Node("task:patrol"); !ok {
		t.Fatal("missing task node")
	}
	targets := g.TargetConcepts("task:patrol")
	if len(targets) != 2 {
		t.Fatalf("targets = %v", targets)
	}
	priors := kg.ClassPriors(g, "task:patrol")
	if priors[scene.Car] < 0.5 || priors[scene.Truck] < 0.5 {
		t.Errorf("vehicle priors too low: car=%v truck=%v", priors[scene.Car], priors[scene.Truck])
	}
	if priors[scene.Lesion] > 0.4 {
		t.Errorf("lesion prior should be low for a driving task: %v", priors[scene.Lesion])
	}
}

func TestGenerateWithNegation(t *testing.T) {
	l := New(DefaultOptions())
	g, err := l.Generate("harvest", "Find ripe apples, ignore vegetation and leaves")
	if err != nil {
		t.Fatal(err)
	}
	priors := kg.ClassPriors(g, "task:harvest")
	if priors[scene.RipeFruit] < 0.5 {
		t.Errorf("ripe fruit prior = %v, want high", priors[scene.RipeFruit])
	}
	if priors[scene.LeafCluster] != 0 {
		t.Errorf("avoided foliage prior = %v, want 0", priors[scene.LeafCluster])
	}
}

func TestGenerateAdjectiveBinding(t *testing.T) {
	l := New(DefaultOptions())
	g, err := l.Generate("qa", "Inspect for small gray bolts")
	if err != nil {
		t.Fatal(err)
	}
	cp := kg.ConceptProfile(g, "concept:bolt")
	if cp.Size[scene.Small] < 0.8 {
		t.Errorf("adjective 'small' not bound: %v", cp.Size)
	}
	if cp.Color[scene.Gray] < 0.8 {
		t.Errorf("adjective 'gray' not bound: %v", cp.Color)
	}
	priors := kg.ClassPriors(g, "task:qa")
	if priors[scene.Bolt] < 0.7 {
		t.Errorf("bolt prior = %v", priors[scene.Bolt])
	}
}

func TestGenerateAdjectivesResetAcrossClauses(t *testing.T) {
	l := New(DefaultOptions())
	// "red" before the comma must NOT color the gears after it.
	g, err := l.Generate("mixed", "Find red cracks, then count gears")
	if err != nil {
		t.Fatal(err)
	}
	cp := kg.ConceptProfile(g, "concept:gear")
	if cp.Color[scene.Red] > 0 {
		t.Errorf("adjective leaked across clause boundary: %v", cp.Color)
	}
}

func TestGeneratePluralsAndVariants(t *testing.T) {
	l := New(DefaultOptions())
	// Plural and morphological variants must resolve via stemming/fuzzy.
	for _, desc := range []string{
		"Detect vehicles",
		"Find pedestrians and cyclists",
		"Count the gears and bolts",
		"Locate lesions",
	} {
		g, err := l.Generate("t", desc)
		if err != nil {
			t.Errorf("Generate(%q) failed: %v", desc, err)
			continue
		}
		if len(g.TargetConcepts("task:t")) == 0 {
			t.Errorf("Generate(%q) found no targets", desc)
		}
	}
}

func TestGenerateFuzzyOOV(t *testing.T) {
	l := New(DefaultOptions())
	// "scalpels" is in-lexicon via stem; "vialz" is a typo needing trigram.
	g, err := l.Generate("surgery", "locate scalpels and vialz")
	if err != nil {
		t.Fatal(err)
	}
	targets := g.TargetConcepts("task:surgery")
	names := map[string]bool{}
	for _, c := range targets {
		n, _ := g.Node(c)
		names[n.Label] = true
	}
	if !names["instrument"] {
		t.Errorf("scalpels not mapped to instrument: %v", names)
	}
	if !names["vial"] {
		t.Errorf("vialz not fuzzy-matched to vial: %v", names)
	}
}

func TestGenerateFuzzyDisabled(t *testing.T) {
	opts := DefaultOptions()
	opts.FuzzyMinSim = 0
	l := New(opts)
	if _, err := l.Generate("x", "locate vialz"); err == nil {
		t.Error("unknown-only description should fail with fuzzy disabled")
	}
}

func TestGenerateErrors(t *testing.T) {
	l := New(DefaultOptions())
	if _, err := l.Generate("", "detect cars"); err == nil {
		t.Error("empty task name should fail")
	}
	if _, err := l.Generate("t", "the quick brown fox"); err == nil {
		t.Error("no recognizable concepts should fail")
	}
}

func TestGenerateDeterministic(t *testing.T) {
	l := New(DefaultOptions())
	desc := "Detect cars, trucks and pedestrians, avoid vegetation"
	g1, err := l.Generate("p", desc)
	if err != nil {
		t.Fatal(err)
	}
	g2, _ := l.Generate("p", desc)
	j1, _ := g1.MarshalJSON()
	j2, _ := g2.MarshalJSON()
	if string(j1) != string(j2) {
		t.Error("generation must be deterministic")
	}
}

func TestGenerateAllDomainsProduceUsefulPriors(t *testing.T) {
	// One mission per domain; the top-prior classes must be the domain's.
	l := New(DefaultOptions())
	missions := map[scene.DomainID]string{
		scene.Driving:    "Detect cars, trucks, pedestrians, cyclists and cones on the road",
		scene.Medical:    "Locate lesions, instruments and vials in the operating room",
		scene.Industrial: "Inspect for gears, bolts and cracks on the line",
		scene.Orchard:    "Find ripe fruit and unripe fruit, ignore leaves",
	}
	for domID, desc := range missions {
		g, err := l.Generate("m", desc)
		if err != nil {
			t.Fatalf("%v: %v", domID, err)
		}
		priors := kg.ClassPriors(g, "task:m")
		dom := scene.GetDomain(domID)
		for _, want := range dom.Classes {
			if domID == scene.Orchard && want == scene.LeafCluster {
				continue // explicitly avoided in the mission
			}
			if priors[want] < 0.4 {
				t.Errorf("%s: class %s prior = %v, want >= 0.4", dom.Name, want.Name(), priors[want])
			}
		}
	}
}

func TestLexiconValuesAreRenderable(t *testing.T) {
	// Every lexicon assertion must reference a value the renderer knows;
	// kg.AddAttrValue panics otherwise, so just exercise them all.
	g := kg.New()
	for word, tmpl := range conceptLexicon {
		for _, a := range tmpl.Attrs {
			func() {
				defer func() {
					if r := recover(); r != nil {
						t.Errorf("concept %q attr %+v: %v", word, a, r)
					}
				}()
				kg.AddAttrValue(g, a.Family, a.Value)
			}()
		}
	}
	for word, a := range adjectiveLexicon {
		func() {
			defer func() {
				if r := recover(); r != nil {
					t.Errorf("adjective %q: %v", word, r)
				}
			}()
			kg.AddAttrValue(g, a.Family, a.Value)
		}()
		if a.Weight <= 0 || a.Weight > 1 {
			t.Errorf("adjective %q weight %v", word, a.Weight)
		}
	}
}

func TestFuzzyMatchBehaviour(t *testing.T) {
	key, isConcept, sim, ok := fuzzyMatch("vehicl", 0.5)
	if !ok || !isConcept || key != "vehicle" {
		t.Errorf("fuzzyMatch(vehicl) = %q concept=%v sim=%v ok=%v", key, isConcept, sim, ok)
	}
	if _, _, _, ok := fuzzyMatch("qqqq", 0.5); ok {
		t.Error("nonsense should not match")
	}
	// Adjective variants.
	key, isConcept, _, ok = fuzzyMatch("stripey", 0.5)
	if !ok || isConcept || !strings.HasPrefix(key, "strip") {
		t.Errorf("fuzzyMatch(stripey) = %q concept=%v ok=%v", key, isConcept, ok)
	}
}
