package llm

import (
	"strings"
	"testing"
	"testing/quick"

	"itask/internal/kg"
	"itask/internal/tensor"
)

// randomWords builds a word soup mixing lexicon entries, variants, and
// garbage — the fuzz surface a mission parser must survive.
func randomWords(rng *tensor.RNG, n int) string {
	vocab := []string{
		"detect", "find", "ignore", "avoid", "the", "and", ",", ".",
		"cars", "trucks", "gears", "lesions", "apples", "leaves",
		"red", "green", "tiny", "huge", "striped", "round",
		"vehicl", "scalple", "zzzqqq", "07x", "_", "FNORD", "détect",
	}
	var b strings.Builder
	for i := 0; i < n; i++ {
		if i > 0 {
			b.WriteByte(' ')
		}
		b.WriteString(vocab[rng.Intn(len(vocab))])
	}
	return b.String()
}

// TestGenerateNeverPanicsProperty: any word soup either yields a valid
// graph or a clean error — never a panic, never an invalid graph.
func TestGenerateNeverPanicsProperty(t *testing.T) {
	l := New(DefaultOptions())
	f := func(seed uint64, lenSel uint8) (ok bool) {
		defer func() {
			if r := recover(); r != nil {
				t.Logf("panic on input: %v", r)
				ok = false
			}
		}()
		rng := tensor.NewRNG(seed)
		desc := randomWords(rng, int(lenSel%25)+1)
		g, err := l.Generate("fuzz", desc)
		if err != nil {
			return true // clean rejection is fine
		}
		// A returned graph must be internally valid: priors computable,
		// serializable, with the task node present.
		if _, found := g.Node("task:fuzz"); !found {
			return false
		}
		priors := kg.ClassPriors(g, "task:fuzz")
		for _, p := range priors {
			if p < 0 || p > 1 {
				return false
			}
		}
		if _, err := g.MarshalJSON(); err != nil {
			return false
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// TestGenerateIdempotentProperty: generating twice from the same input
// yields byte-identical graphs.
func TestGenerateIdempotentProperty(t *testing.T) {
	l := New(DefaultOptions())
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		desc := randomWords(rng, 12)
		g1, err1 := l.Generate("x", desc)
		g2, err2 := l.Generate("x", desc)
		if (err1 == nil) != (err2 == nil) {
			return false
		}
		if err1 != nil {
			return true
		}
		j1, _ := g1.MarshalJSON()
		j2, _ := g2.MarshalJSON()
		return string(j1) == string(j2)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
