package llm

import "strings"

// trigrams returns the character-trigram multiset of a word, padded with
// boundary markers so short words still produce features. This is the
// hashed-pseudo-embedding stand-in for an LLM's subword representation:
// morphological variants ("vehicles" / "vehicle") land close together.
func trigrams(word string) map[string]int {
	w := "^" + strings.ToLower(word) + "$"
	out := map[string]int{}
	if len(w) < 3 {
		out[w]++
		return out
	}
	for i := 0; i+3 <= len(w); i++ {
		out[w[i:i+3]]++
	}
	return out
}

// trigramSim is the cosine similarity between the trigram multisets of two
// words, in [0,1].
func trigramSim(a, b string) float64 {
	ta, tb := trigrams(a), trigrams(b)
	var dot, na, nb float64
	for g, ca := range ta {
		na += float64(ca * ca)
		if cb, ok := tb[g]; ok {
			dot += float64(ca * cb)
		}
	}
	for _, cb := range tb {
		nb += float64(cb * cb)
	}
	if na == 0 || nb == 0 {
		return 0
	}
	return dot / (sqrt(na) * sqrt(nb))
}

func sqrt(x float64) float64 {
	if x <= 0 {
		return 0
	}
	// Newton's method; plenty for similarity scoring and avoids pulling
	// math into the hot tokenizer path... (math.Sqrt would be fine too;
	// this keeps the function inlineable).
	z := x
	for i := 0; i < 20; i++ {
		z = 0.5 * (z + x/z)
	}
	return z
}

// stem strips common English suffixes: plural s/es, -ing, -ed. Applied
// before lexicon lookup so surface forms match base entries.
func stem(word string) string {
	w := strings.ToLower(word)
	switch {
	case strings.HasSuffix(w, "ies") && len(w) > 4:
		return w[:len(w)-3] + "y"
	case strings.HasSuffix(w, "es") && len(w) > 4:
		// "boxes" -> "box", but "cones" -> "cone" needs plain s-strip;
		// try the es-strip only for sibilant stems.
		base := w[:len(w)-2]
		if strings.HasSuffix(base, "x") || strings.HasSuffix(base, "s") ||
			strings.HasSuffix(base, "ch") || strings.HasSuffix(base, "sh") {
			return base
		}
		return w[:len(w)-1]
	case strings.HasSuffix(w, "s") && !strings.HasSuffix(w, "ss") && len(w) > 3:
		return w[:len(w)-1]
	case strings.HasSuffix(w, "ing") && len(w) > 5:
		return w[:len(w)-3]
	case strings.HasSuffix(w, "ed") && len(w) > 4:
		return w[:len(w)-2]
	}
	return w
}

// fuzzyMatch finds the best lexicon key for an out-of-vocabulary word via
// trigram similarity over both concept and adjective lexicons. Returns the
// matched key, whether it is a concept (vs adjective), the similarity, and
// ok=false when nothing clears minSim.
func fuzzyMatch(word string, minSim float64) (key string, isConcept bool, sim float64, ok bool) {
	best := 0.0
	for k := range conceptLexicon {
		if s := trigramSim(word, k); s > best {
			best, key, isConcept = s, k, true
		}
	}
	for k := range adjectiveLexicon {
		if s := trigramSim(word, k); s > best {
			best, key, isConcept = s, k, false
		}
	}
	if best < minSim {
		return "", false, best, false
	}
	return key, isConcept, best, true
}
