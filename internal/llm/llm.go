package llm

import (
	"fmt"
	"strings"

	"itask/internal/kg"
)

// Options tunes the simulated LLM.
type Options struct {
	// FuzzyMinSim is the minimum trigram similarity for out-of-vocabulary
	// words to be adopted; 0 disables fuzzy matching.
	FuzzyMinSim float64
	// MinEdgeWeight prunes weaker assertions from the final graph.
	MinEdgeWeight float64
}

// DefaultOptions returns the settings used in the experiments.
func DefaultOptions() Options {
	return Options{FuzzyMinSim: 0.55, MinEdgeWeight: 0.2}
}

// SimLLM is the deterministic mission-description-to-knowledge-graph
// generator. It is stateless and safe for concurrent use.
type SimLLM struct {
	opts Options
}

// New creates a simulated LLM.
func New(opts Options) *SimLLM { return &SimLLM{opts: opts} }

// Tokenize lowercases and splits a description on non-letter boundaries.
func Tokenize(text string) []string {
	var toks []string
	var cur strings.Builder
	for _, r := range strings.ToLower(text) {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') || r == '_' {
			cur.WriteRune(r)
			continue
		}
		if cur.Len() > 0 {
			toks = append(toks, cur.String())
			cur.Reset()
		}
		// Punctuation is a clause boundary; represent it with a marker so
		// the parser can reset adjective state.
		if r == ',' || r == ';' || r == '.' {
			toks = append(toks, "|")
		}
	}
	if cur.Len() > 0 {
		toks = append(toks, cur.String())
	}
	return toks
}

// Generate parses a mission description into a knowledge graph rooted at a
// task node "task:<taskName>". The description's recognized concepts become
// concept nodes with attribute edges; parser mode (target vs avoid) follows
// assertion and negation verbs; adjectives modify the next concept.
func (l *SimLLM) Generate(taskName, description string) (*kg.Graph, error) {
	if taskName == "" {
		return nil, fmt.Errorf("llm: empty task name")
	}
	g := kg.New()
	taskID := "task:" + taskName
	g.AddNode(taskID, kg.TaskNode, description)

	mode := kg.Targets
	var pending []AttrAssertion
	matched := 0

	emitConcept := func(tmpl ConceptTemplate, conf float64) {
		conceptID := "concept:" + tmpl.Name
		g.AddNode(conceptID, kg.ConceptNode, tmpl.Name)
		g.AddEdge(taskID, conceptID, mode, conf)
		for _, a := range tmpl.Attrs {
			id := kg.AddAttrValue(g, a.Family, a.Value)
			g.AddEdge(conceptID, id, relFor(a.Family), clamp01(a.Weight*conf))
		}
		// Pending adjectives override/extend the template.
		for _, a := range pending {
			id := kg.AddAttrValue(g, a.Family, a.Value)
			g.AddEdge(conceptID, id, relFor(a.Family), clamp01(a.Weight*conf))
		}
		pending = nil
		matched++
	}

	for _, tok := range Tokenize(description) {
		if tok == "|" {
			pending = nil
			mode = kg.Targets
			continue
		}
		if negationWords[tok] {
			mode = kg.Avoids
			pending = nil
			continue
		}
		if assertionWords[tok] {
			mode = kg.Targets
			pending = nil
			continue
		}
		if isBreakerWord(tok) {
			continue
		}
		word := stem(tok)
		if adj, ok := adjectiveLexicon[word]; ok {
			pending = append(pending, adj)
			continue
		}
		if tmpl, ok := conceptLexicon[word]; ok {
			emitConcept(tmpl, 1.0)
			continue
		}
		// Out-of-vocabulary: fuzzy match against the lexicon, weight scaled
		// by similarity — the LLM-embedding-space stand-in.
		if l.opts.FuzzyMinSim > 0 {
			if key, isConcept, sim, ok := fuzzyMatch(word, l.opts.FuzzyMinSim); ok {
				if isConcept {
					emitConcept(conceptLexicon[key], sim)
				} else {
					a := adjectiveLexicon[key]
					a.Weight = clamp01(a.Weight * sim)
					pending = append(pending, a)
				}
			}
		}
	}
	if matched == 0 {
		return nil, fmt.Errorf("llm: no concepts recognized in %q", description)
	}
	if l.opts.MinEdgeWeight > 0 {
		g.Prune(l.opts.MinEdgeWeight)
	}
	return g, nil
}

// isBreakerWord reports whether tok is in the clause-breaker stop list.
func isBreakerWord(tok string) bool {
	_, ok := clauseBreakers[tok]
	return ok
}

func relFor(family string) kg.Relation {
	switch family {
	case "shape":
		return kg.HasShape
	case "color":
		return kg.HasColor
	case "texture":
		return kg.HasTexture
	case "size":
		return kg.HasSize
	}
	panic(fmt.Sprintf("llm: unknown attribute family %q", family))
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
