// Package rcache is a content-addressed detection-result cache for the
// serving layer. Entries are keyed by (artifact, task, image digest):
//
//   - Artifact is the full versioned artifact ID (name@vN#sum) the request
//     was routed to. Because every published version gets a fresh ID and
//     routing always resolves to the active version, a publish or rollback
//     naturally invalidates stale entries — no epoch machinery: requests
//     simply stop asking for the demoted version's keys, and if a rollback
//     restores an old version its still-TTL-valid entries become reachable
//     again.
//   - Task is part of the key because post-inference knowledge-graph
//     filtering is task-specific: the same image under the same model still
//     decodes against different priors per task.
//   - Digest is a 64-bit FNV-1a content hash of the image tensor (shape and
//     float bits), so identical frames from consecutive requests or
//     concurrent clients hit regardless of tensor identity.
//
// The cache is a sharded LRU: keys map to one of N power-of-two shards by
// digest, each shard owning its own mutex, entry map, and LRU list, so
// concurrent hits on distinct images never contend on a shared lock. The
// byte budget is split evenly across shards and enforced per shard with LRU
// eviction. Counters (hits, misses, stale, evictions, inserts) are padded
// per-shard atomics aggregated only in Stats.
//
// The hot path is allocation-free: Get performs a map lookup with a
// comparable struct key and an intrusive LRU touch, and never allocates on
// hit or miss.
//
// Sharding spreads *distinct* digests; it does nothing for one viral digest
// whose readers all hash to the same shard. When Config.HotThreshold is set,
// a contention-adaptive hot tier (see hot.go) promotes entries whose digests
// an MJRTY frequency estimator proves hot into a replicated read-only table:
// promoted lookups take no mutex, relink no LRU, and touch no shared mutable
// cache line. Promotion, decay-driven demotion, and byte pressure are
// managed by the tier; MarkHot lets an upstream hint (the gateway's
// fleet-wide hot verdict) pre-promote, and Replicated exposes the
// replica-only probe for singleflight fast paths.
//
// Two auxiliary mechanisms round out the invalidation story:
//
//   - InvalidateArtifact sweeps all entries pinned to one versioned artifact
//     ID, so demoting a poisoned version reclaims its bytes immediately
//     instead of waiting for TTL expiry or LRU pressure.
//   - A short-TTL negative cache (PutNegative/Negative, enabled by
//     Config.NegTTL) marks keys the serving layer quarantined as poison, so
//     a hot poison frame fails fast instead of re-executing — and
//     re-panicking — on every arrival.
package rcache

import (
	"sync"
	"sync/atomic"
	"time"
)

// Key identifies one cacheable detection result.
type Key struct {
	// Artifact is the full versioned artifact ID (name@vN#sum) the request
	// routes to. Results computed by a different version must not be stored
	// under this key.
	Artifact string
	// Task names the mission whose knowledge-graph priors filtered the
	// result.
	Task string
	// Digest is the content hash of the input image (see DigestImage).
	Digest uint64
}

// Config sizes a Cache.
type Config struct {
	// MaxBytes is the total byte budget across all shards. Must be
	// positive; it is split evenly per shard and enforced with LRU
	// eviction.
	MaxBytes int64
	// TTL bounds entry lifetime. Zero disables expiry: entries live until
	// evicted by the byte budget. A TTL keeps a rolled-back version's
	// resurrected entries from serving arbitrarily old results.
	TTL time.Duration
	// Shards is the number of lock shards, rounded up to a power of two.
	// Zero picks a default (16) sized for small-host parallelism.
	Shards int
	// SizeOf estimates the resident bytes of a payload for budget
	// accounting. Nil falls back to a flat per-entry estimate.
	SizeOf func(payload any) int64
	// NegTTL enables the negative cache: keys marked with PutNegative are
	// reported by Negative for this long. Zero disables negative caching
	// (PutNegative becomes a no-op). Keep it short — a negative entry
	// suppresses re-execution of content the serving layer quarantined as
	// poison, and the only way to discover a fixed kernel is to let the
	// content through again.
	NegTTL time.Duration

	// HotThreshold enables the hot replica tier: a digest seen this many
	// times within a decay window (by the tier's MJRTY estimator) has its
	// entry promoted to the lock-free replicated table. Zero disables the
	// tier entirely (no detector, no replica memory).
	HotThreshold int
	// HotDecay is the estimator's decay window in arrivals (counts halve
	// every HotDecay slow-path lookups); it is also the cadence of the
	// demotion sweep. Zero picks freq.DefaultDecay.
	HotDecay int
	// HotMaxBytes bounds the replica tier's memory. Replicas are copies —
	// their bytes are charged here, on top of the shard budget, not against
	// MaxBytes. Zero picks MaxBytes/8.
	HotMaxBytes int64
	// HotStripes is the number of per-P hit-counter stripes per promoted
	// entry, rounded up to a power of two. Zero picks GOMAXPROCS.
	HotStripes int
}

// defaultEntrySize is the per-entry accounting charge when no SizeOf is
// configured: key strings, map/list bookkeeping, and a small payload.
const defaultEntrySize = 512

// entry is one cached result, threaded onto its shard's intrusive LRU list.
type entry struct {
	key     Key
	payload any
	// model is the artifact ID that computed the payload (== key.Artifact
	// by the caller's fill contract).
	model   string
	bytes   int64
	expires time.Time // zero when the cache has no TTL

	// Intrusive doubly-linked LRU list (head = most recent). An intrusive
	// list keeps Get allocation-free: touching an entry relinks existing
	// nodes instead of allocating container/list elements.
	prev, next *entry
}

// maxNegativesPerShard caps the negative map so a storm of distinct poison
// digests cannot grow it without bound; at the cap, inserting purges expired
// entries first and then drops an arbitrary one.
const maxNegativesPerShard = 1024

// negKey scopes a quarantine verdict to the tenant whose request earned it.
// Positive entries are shared across tenants (a detection result is a pure
// function of version+task+content), but a negative verdict is evidence
// gathered from one tenant's traffic: scoping it prevents tenant A's poison
// storm from blinding tenant B to content B could serve fine (for example
// after a kernel rollback A has not re-probed yet).
type negKey struct {
	Key
	tenant string
}

// shard is one lock stripe: a map + intrusive LRU under a private mutex,
// with padded atomic counters so two shards never share a cache line.
type shard struct {
	mu      sync.Mutex
	entries map[Key]*entry
	// neg maps (tenant-scoped) quarantined keys to their negative-entry
	// expiry (nil until the first PutNegative on this shard).
	neg map[negKey]time.Time
	// head is most-recently-used, tail least. nil when empty.
	head, tail *entry
	bytes      int64
	maxBytes   int64

	hits      atomic.Uint64
	misses    atomic.Uint64
	stale     atomic.Uint64
	evictions atomic.Uint64
	inserts   atomic.Uint64

	negHits    atomic.Uint64
	negInserts atomic.Uint64

	_ [64]byte // keep neighbouring shards' hot fields off this cache line
}

// Cache is a sharded content-addressed result cache. Safe for concurrent
// use.
type Cache struct {
	shards []*shard
	mask   uint64
	ttl    time.Duration
	negTTL time.Duration
	sizeOf func(any) int64
	// hot is the replica tier; nil when Config.HotThreshold is zero, and
	// every use is behind that nil check.
	hot *hotTier
}

// New builds a cache from cfg. Panics when MaxBytes is not positive (a
// disabled cache is a nil *Cache, not a zero-budget one).
func New(cfg Config) *Cache {
	if cfg.MaxBytes <= 0 {
		panic("rcache: MaxBytes must be positive")
	}
	n := cfg.Shards
	if n <= 0 {
		n = 16
	}
	// Round up to a power of two so shard selection is a mask, not a mod.
	pow := 1
	for pow < n {
		pow <<= 1
	}
	per := cfg.MaxBytes / int64(pow)
	if per <= 0 {
		per = 1
	}
	c := &Cache{
		shards: make([]*shard, pow),
		mask:   uint64(pow - 1),
		ttl:    cfg.TTL,
		negTTL: cfg.NegTTL,
		sizeOf: cfg.SizeOf,
	}
	for i := range c.shards {
		c.shards[i] = &shard{entries: map[Key]*entry{}, maxBytes: per}
	}
	if cfg.HotThreshold > 0 {
		hotBytes := cfg.HotMaxBytes
		if hotBytes <= 0 {
			hotBytes = cfg.MaxBytes / 8
			if hotBytes <= 0 {
				hotBytes = cfg.MaxBytes
			}
		}
		c.hot = newHotTier(cfg.HotThreshold, cfg.HotDecay, hotBytes, cfg.HotStripes)
	}
	return c
}

// shardFor selects the lock stripe for a key. Digest bits are already
// uniformly mixed by FNV, so the low bits suffice.
func (c *Cache) shardFor(k Key) *shard {
	return c.shards[k.Digest&c.mask]
}

// Get returns the cached payload and producing model for k, if present and
// not expired at now. Expired entries are removed and counted stale (a
// distinct signal from a plain miss: the entry existed but aged out).
// Allocation-free on both hit and miss.
//
// With the hot tier enabled, promoted keys are answered from the replica
// table first — no mutex, no LRU write — and only replica misses fall
// through to the sharded path, where each lookup also feeds the promotion
// detector (replicated hits deliberately do not: the detector's slot mutex
// is the shared line the tier exists to avoid).
func (c *Cache) Get(k Key, now time.Time) (payload any, model string, ok bool) {
	if c.hot != nil {
		if payload, model, ok = c.hot.get(k, now); ok {
			return payload, model, true
		}
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	e := sh.entries[k]
	if e == nil {
		sh.mu.Unlock()
		sh.misses.Add(1)
		if c.hot != nil {
			// Count the arrival so the digest can trip hot while its result
			// is still being computed; the eventual Put fill-promotes.
			c.hot.record(k, now)
		}
		return nil, "", false
	}
	if !e.expires.IsZero() && now.After(e.expires) {
		sh.removeLocked(e)
		sh.mu.Unlock()
		sh.stale.Add(1)
		sh.misses.Add(1)
		if c.hot != nil {
			c.hot.record(k, now)
		}
		return nil, "", false
	}
	sh.touchLocked(e)
	payload, model = e.payload, e.model
	bytes, expires := e.bytes, e.expires
	sh.mu.Unlock()
	sh.hits.Add(1)
	if c.hot != nil && c.hot.record(k, now) {
		c.hot.promote(k, payload, model, bytes, expires)
	}
	return payload, model, true
}

// Put stores payload as the result for k, computed by k.Artifact. An
// existing entry for k is replaced (refreshing its TTL). Entries larger
// than a whole shard's budget are not admitted.
func (c *Cache) Put(k Key, payload any, now time.Time) {
	size := int64(defaultEntrySize)
	if c.sizeOf != nil {
		if s := c.sizeOf(payload); s > 0 {
			size = s
		}
	}
	sh := c.shardFor(k)
	if size > sh.maxBytes {
		return
	}
	var expires time.Time
	if c.ttl > 0 {
		expires = now.Add(c.ttl)
	}
	sh.mu.Lock()
	if e := sh.entries[k]; e != nil {
		sh.bytes += size - e.bytes
		e.payload, e.model, e.bytes, e.expires = payload, k.Artifact, size, expires
		sh.touchLocked(e)
	} else {
		e := &entry{key: k, payload: payload, model: k.Artifact, bytes: size, expires: expires}
		sh.entries[k] = e
		sh.pushFrontLocked(e)
		sh.bytes += size
		sh.inserts.Add(1)
	}
	for sh.bytes > sh.maxBytes && sh.tail != nil {
		sh.removeLocked(sh.tail)
		sh.evictions.Add(1)
	}
	sh.mu.Unlock()
	if c.hot != nil && c.hot.tracker.Hot(k.Digest) {
		// Fill-promote: the digest went hot while its result was in flight
		// (arrivals counted as misses above), or an already-promoted entry
		// was refreshed with a new payload.
		c.hot.promote(k, payload, k.Artifact, size, expires)
	}
}

// Invalidate drops the entry for k — and its hot replica, if promoted —
// reporting whether either existed.
func (c *Cache) Invalidate(k Key) bool {
	if c.hot != nil {
		c.hot.invalidate(k)
	}
	sh := c.shardFor(k)
	sh.mu.Lock()
	defer sh.mu.Unlock()
	e := sh.entries[k]
	if e == nil {
		return false
	}
	sh.removeLocked(e)
	return true
}

// InvalidateArtifact sweeps every shard and drops all entries (and negative
// entries) whose key pins the given artifact ID, returning how many positive
// entries were removed. A demoted/poisoned version's results become
// unreachable through routing anyway — routing stops resolving to its ID —
// but the sweep reclaims their bytes immediately instead of waiting for TTL
// expiry or LRU pressure, and guarantees a rollback-then-republish of the
// same version string can never resurrect them. Shard locks are taken one
// at a time, so concurrent hits on other shards never stall.
func (c *Cache) InvalidateArtifact(artifact string) int {
	removed := 0
	if c.hot != nil {
		// Retire replicas first and in one copy-on-write publish: once this
		// returns, no lock-free reader can see any of the artifact's entries,
		// so the registry can let the next snapshot serve.
		removed += c.hot.retireArtifact(artifact)
	}
	for _, sh := range c.shards {
		sh.mu.Lock()
		for k, e := range sh.entries {
			if k.Artifact == artifact {
				sh.removeLocked(e)
				removed++
			}
		}
		for k := range sh.neg {
			if k.Artifact == artifact {
				delete(sh.neg, k)
			}
		}
		sh.mu.Unlock()
	}
	return removed
}

// RetireReplicas drops every hot-tier replica pinned to one versioned
// artifact ID in a single copy-on-write publish, leaving the sharded tier
// alone, and returns how many replicas were retired. This is the registry
// epoch-change reconciliation: shard entries invalidate naturally (requests
// stop asking for a retired version's keys, and a rollback may legitimately
// resurrect its still-TTL-valid entries), but replicas answer lock-free
// probes keyed by whatever the prober believes is active — they must be
// gone before a new routing snapshot serves. A no-op without the hot tier.
func (c *Cache) RetireReplicas(artifact string) int {
	if c.hot == nil {
		return 0
	}
	return c.hot.retireArtifact(artifact)
}

// PutNegative marks k as quarantined for one tenant: Negative reports it
// for the cache's NegTTL. Used by the serving layer so a hot poison frame —
// content proven to panic or hang its kernel — fails fast instead of
// re-executing (and re-panicking, re-bisecting, re-tripping breakers) on
// every arrival. The verdict is tenant-scoped (see negKey): only the tenant
// whose traffic earned the quarantine is refused. A no-op when the cache
// has no NegTTL.
func (c *Cache) PutNegative(k Key, tenant string, now time.Time) {
	if c.negTTL <= 0 {
		return
	}
	nk := negKey{Key: k, tenant: tenant}
	sh := c.shardFor(k)
	sh.mu.Lock()
	if sh.neg == nil {
		sh.neg = map[negKey]time.Time{}
	}
	if _, exists := sh.neg[nk]; !exists && len(sh.neg) >= maxNegativesPerShard {
		// Purge expired first; if the storm is all live, drop an arbitrary
		// victim — losing a negative entry only costs one re-execution.
		for ok, exp := range sh.neg {
			if now.After(exp) {
				delete(sh.neg, ok)
			}
		}
		for ok := range sh.neg {
			if len(sh.neg) < maxNegativesPerShard {
				break
			}
			delete(sh.neg, ok)
		}
	}
	sh.neg[nk] = now.Add(c.negTTL)
	sh.mu.Unlock()
	sh.negInserts.Add(1)
}

// Negative reports whether k is under an unexpired negative entry for
// tenant at now. Expired entries are removed on probe. Allocation-free.
func (c *Cache) Negative(k Key, tenant string, now time.Time) bool {
	if c.negTTL <= 0 {
		return false
	}
	nk := negKey{Key: k, tenant: tenant}
	sh := c.shardFor(k)
	sh.mu.Lock()
	exp, ok := sh.neg[nk]
	if ok && now.After(exp) {
		delete(sh.neg, nk)
		ok = false
	}
	sh.mu.Unlock()
	if ok {
		sh.negHits.Add(1)
	}
	return ok
}

// MarkHot force-feeds the promotion detector with k's digest (an upstream
// hint — the gateway's fleet-wide hot verdict arriving as X-Itask-Hot —
// knows about replicated traffic this process hasn't seen yet) and, when the
// sharded tier already holds k, promotes it immediately. A no-op without the
// hot tier. The detector's Force never displaces a hotter incumbent, so a
// spoofed or stale hint cannot evict genuinely hot slots.
func (c *Cache) MarkHot(k Key, now time.Time) {
	if c.hot == nil {
		return
	}
	c.hot.tracker.Force(k.Digest)
	sh := c.shardFor(k)
	sh.mu.Lock()
	e := sh.entries[k]
	var payload any
	var model string
	var bytes int64
	var expires time.Time
	if e != nil && (e.expires.IsZero() || !now.After(e.expires)) {
		payload, model, bytes, expires = e.payload, e.model, e.bytes, e.expires
	} else {
		e = nil
	}
	sh.mu.Unlock()
	if e != nil {
		c.hot.promote(k, payload, model, bytes, expires)
	}
}

// Replicated probes only the hot replica table: a hit is the full lock-free
// fast path (counted as a hot hit), a miss means k is simply not promoted —
// the sharded tier is not consulted and no counters move. The serving
// layer's singleflight uses it so a promoted digest's readers never enter a
// flight table stripe.
func (c *Cache) Replicated(k Key, now time.Time) (payload any, model string, ok bool) {
	if c.hot == nil {
		return nil, "", false
	}
	return c.hot.get(k, now)
}

// pushFrontLocked links e as most-recently-used. Caller holds sh.mu.
func (sh *shard) pushFrontLocked(e *entry) {
	e.prev = nil
	e.next = sh.head
	if sh.head != nil {
		sh.head.prev = e
	}
	sh.head = e
	if sh.tail == nil {
		sh.tail = e
	}
}

// touchLocked moves an existing entry to the front. Caller holds sh.mu.
func (sh *shard) touchLocked(e *entry) {
	if sh.head == e {
		return
	}
	// Unlink (e is not head, so e.prev != nil).
	e.prev.next = e.next
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev = nil
	e.next = sh.head
	sh.head.prev = e
	sh.head = e
}

// removeLocked unlinks e from the list and map and returns its bytes to the
// budget. Caller holds sh.mu.
func (sh *shard) removeLocked(e *entry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		sh.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		sh.tail = e.prev
	}
	e.prev, e.next = nil, nil
	delete(sh.entries, e.key)
	sh.bytes -= e.bytes
}

// Stats is a point-in-time aggregate across shards, shaped for /metricsz.
type Stats struct {
	// Hits/Misses count Get outcomes; Stale is the subset of misses where
	// an entry existed but had outlived the TTL.
	Hits   uint64 `json:"hits"`
	Misses uint64 `json:"misses"`
	Stale  uint64 `json:"stale"`
	// Inserts counts first-time admissions; Evictions counts entries
	// dropped to fit the byte budget.
	Inserts   uint64 `json:"inserts"`
	Evictions uint64 `json:"evictions"`
	// Entries/Bytes are current occupancy; MaxBytes the configured budget.
	Entries  int   `json:"entries"`
	Bytes    int64 `json:"bytes"`
	MaxBytes int64 `json:"max_bytes"`
	Shards   int   `json:"shards"`
	// Negative-cache behaviour: quarantined keys currently marked, probes
	// answered "still quarantined", and marks recorded.
	NegEntries int    `json:"neg_entries,omitempty"`
	NegHits    uint64 `json:"neg_hits,omitempty"`
	NegInserts uint64 `json:"neg_inserts,omitempty"`
	// Hot replica tier (zero values when the tier is disabled). HotHits is
	// included in Hits; HotBytes counts replica copies, charged against
	// HotMaxBytes on top of the shard budget.
	HotEntries    int    `json:"hot_entries,omitempty"`
	HotBytes      int64  `json:"hot_bytes,omitempty"`
	HotMaxBytes   int64  `json:"hot_max_bytes,omitempty"`
	HotHits       uint64 `json:"hot_hits,omitempty"`
	HotPromotions uint64 `json:"hot_promotions,omitempty"`
	HotDemotions  uint64 `json:"hot_demotions,omitempty"`
}

// Stats aggregates all shards. Counter reads are atomic; occupancy briefly
// takes each shard's lock in turn (never all at once), so a snapshot never
// stalls concurrent hits on other shards.
func (c *Cache) Stats() Stats {
	var st Stats
	st.Shards = len(c.shards)
	for _, sh := range c.shards {
		st.Hits += sh.hits.Load()
		st.Misses += sh.misses.Load()
		st.Stale += sh.stale.Load()
		st.Inserts += sh.inserts.Load()
		st.Evictions += sh.evictions.Load()
		st.NegHits += sh.negHits.Load()
		st.NegInserts += sh.negInserts.Load()
		st.MaxBytes += sh.maxBytes
		sh.mu.Lock()
		st.Entries += len(sh.entries)
		st.NegEntries += len(sh.neg)
		st.Bytes += sh.bytes
		sh.mu.Unlock()
	}
	if c.hot != nil {
		c.hot.snapshotInto(&st)
	}
	return st
}

// Len reports the current number of entries across all shards.
func (c *Cache) Len() int {
	n := 0
	for _, sh := range c.shards {
		sh.mu.Lock()
		n += len(sh.entries)
		sh.mu.Unlock()
	}
	return n
}
