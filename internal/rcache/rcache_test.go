package rcache

import (
	"fmt"
	"sync"
	"testing"
	"time"

	"itask/internal/tensor"
)

func key(artifact, task string, digest uint64) Key {
	return Key{Artifact: artifact, Task: task, Digest: digest}
}

func TestGetPutBasic(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 4})
	now := time.Now()
	k := key("m@v1#ab", "patrol", 42)

	if _, _, ok := c.Get(k, now); ok {
		t.Fatal("hit on empty cache")
	}
	c.Put(k, "payload-1", now)
	got, model, ok := c.Get(k, now)
	if !ok || got != "payload-1" || model != "m@v1#ab" {
		t.Fatalf("Get = (%v, %q, %v), want (payload-1, m@v1#ab, true)", got, model, ok)
	}

	// Same digest, different artifact or task: distinct entries.
	if _, _, ok := c.Get(key("m@v2#cd", "patrol", 42), now); ok {
		t.Fatal("hit across artifact versions")
	}
	if _, _, ok := c.Get(key("m@v1#ab", "rescue", 42), now); ok {
		t.Fatal("hit across tasks")
	}

	// Replacement refreshes the payload.
	c.Put(k, "payload-2", now)
	if got, _, _ := c.Get(k, now); got != "payload-2" {
		t.Fatalf("after replace Get = %v, want payload-2", got)
	}
	st := c.Stats()
	if st.Inserts != 1 {
		t.Fatalf("replace must not count as insert: inserts = %d", st.Inserts)
	}
}

func TestTTLExpiry(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, TTL: time.Second, Shards: 1})
	now := time.Now()
	k := key("m@v1#ab", "patrol", 7)
	c.Put(k, "p", now)

	if _, _, ok := c.Get(k, now.Add(999*time.Millisecond)); !ok {
		t.Fatal("entry expired before TTL")
	}
	if _, _, ok := c.Get(k, now.Add(1001*time.Millisecond)); ok {
		t.Fatal("entry served after TTL")
	}
	st := c.Stats()
	if st.Stale != 1 {
		t.Fatalf("stale = %d, want 1", st.Stale)
	}
	if st.Entries != 0 {
		t.Fatalf("expired entry still resident: entries = %d", st.Entries)
	}
	// A fresh Put after expiry re-inserts with a new TTL.
	later := now.Add(2 * time.Second)
	c.Put(k, "p2", later)
	if _, _, ok := c.Get(k, later.Add(500*time.Millisecond)); !ok {
		t.Fatal("re-inserted entry not served")
	}
}

func TestLRUEvictionUnderByteBudget(t *testing.T) {
	// One shard, budget for exactly 4 default-sized entries.
	c := New(Config{MaxBytes: 4 * defaultEntrySize, Shards: 1})
	now := time.Now()
	for i := 0; i < 4; i++ {
		c.Put(key("m@v1#ab", "t", uint64(i)), i, now)
	}
	// Touch 0 so it is MRU; inserting a 5th must evict 1 (the LRU).
	if _, _, ok := c.Get(key("m@v1#ab", "t", 0), now); !ok {
		t.Fatal("entry 0 missing")
	}
	c.Put(key("m@v1#ab", "t", 4), 4, now)

	if _, _, ok := c.Get(key("m@v1#ab", "t", 1), now); ok {
		t.Fatal("LRU entry 1 survived eviction")
	}
	for _, d := range []uint64{0, 2, 3, 4} {
		if _, _, ok := c.Get(key("m@v1#ab", "t", d), now); !ok {
			t.Fatalf("entry %d evicted, want resident", d)
		}
	}
	st := c.Stats()
	if st.Evictions != 1 {
		t.Fatalf("evictions = %d, want 1", st.Evictions)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.MaxBytes)
	}
}

func TestSizeOfAndOversizedEntry(t *testing.T) {
	c := New(Config{
		MaxBytes: 1000,
		Shards:   1,
		SizeOf:   func(p any) int64 { return int64(p.(int)) },
	})
	now := time.Now()
	c.Put(key("a", "t", 1), 600, now)
	if c.Len() != 1 {
		t.Fatal("first entry not admitted")
	}
	// Over a whole shard's budget: refused outright, resident set untouched.
	c.Put(key("a", "t", 2), 5000, now)
	if _, _, ok := c.Get(key("a", "t", 2), now); ok {
		t.Fatal("oversized entry admitted")
	}
	if _, _, ok := c.Get(key("a", "t", 1), now); !ok {
		t.Fatal("oversized Put evicted the resident set")
	}
	// A second fitting entry evicts the first (600+600 > 1000).
	c.Put(key("a", "t", 3), 600, now)
	if _, _, ok := c.Get(key("a", "t", 1), now); ok {
		t.Fatal("budget not enforced with SizeOf")
	}
}

func TestInvalidate(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	now := time.Now()
	k := key("m@v1#ab", "t", 9)
	c.Put(k, "p", now)
	if !c.Invalidate(k) {
		t.Fatal("Invalidate missed a resident entry")
	}
	if c.Invalidate(k) {
		t.Fatal("Invalidate found a removed entry")
	}
	if _, _, ok := c.Get(k, now); ok {
		t.Fatal("invalidated entry served")
	}
}

func TestInvalidateArtifact(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 4, NegTTL: time.Minute})
	now := time.Now()
	// Entries for two versions spread across shards (distinct digests), plus
	// a negative entry pinned to the doomed version.
	for d := uint64(0); d < 32; d++ {
		c.Put(key("m@v1#aa", "t", d), d, now)
		c.Put(key("m@v2#bb", "t", d), d, now)
	}
	c.PutNegative(key("m@v1#aa", "t", 999), "tenant-a", now)

	if removed := c.InvalidateArtifact("m@v1#aa"); removed != 32 {
		t.Fatalf("InvalidateArtifact removed %d entries, want 32", removed)
	}
	st := c.Stats()
	if st.Entries != 32 {
		t.Fatalf("entries = %d after sweep, want 32 survivors", st.Entries)
	}
	if st.NegEntries != 0 {
		t.Fatalf("negative entry survived the artifact sweep: %d", st.NegEntries)
	}
	for d := uint64(0); d < 32; d++ {
		if _, _, ok := c.Get(key("m@v1#aa", "t", d), now); ok {
			t.Fatalf("swept entry %d still served", d)
		}
		if _, _, ok := c.Get(key("m@v2#bb", "t", d), now); !ok {
			t.Fatalf("survivor entry %d lost by the sweep", d)
		}
	}
	// Bytes reclaimed immediately, not merely unreachable.
	if st.Bytes != 32*defaultEntrySize {
		t.Fatalf("bytes = %d after sweep, want %d", st.Bytes, 32*defaultEntrySize)
	}
	if removed := c.InvalidateArtifact("m@v1#aa"); removed != 0 {
		t.Fatalf("second sweep removed %d, want 0", removed)
	}
}

func TestNegativeCache(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 2, NegTTL: time.Second})
	now := time.Now()
	k := key("m@v1#aa", "patrol", 77)

	if c.Negative(k, "a", now) {
		t.Fatal("negative hit on empty cache")
	}
	c.PutNegative(k, "a", now)
	if !c.Negative(k, "a", now.Add(999*time.Millisecond)) {
		t.Fatal("negative entry expired before NegTTL")
	}
	// Negative entries are disjoint from positive ones: the same key still
	// misses the result cache.
	if _, _, ok := c.Get(k, now); ok {
		t.Fatal("negative entry served as a positive result")
	}
	if c.Negative(k, "a", now.Add(1001*time.Millisecond)) {
		t.Fatal("negative entry served after NegTTL")
	}
	st := c.Stats()
	if st.NegInserts != 1 || st.NegHits != 1 {
		t.Fatalf("neg inserts/hits = %d/%d, want 1/1", st.NegInserts, st.NegHits)
	}
	if st.NegEntries != 0 {
		t.Fatalf("expired negative entry still resident: %d", st.NegEntries)
	}
}

// A quarantine verdict is scoped to the tenant whose traffic earned it:
// tenant A's poison mark on a digest must not blind tenant B to it.
func TestNegativeCacheTenantScoped(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, Shards: 2, NegTTL: time.Minute})
	now := time.Now()
	k := key("m@v1#aa", "patrol", 42)
	c.PutNegative(k, "a", now)
	if !c.Negative(k, "a", now) {
		t.Fatal("tenant a's own verdict not visible")
	}
	if c.Negative(k, "b", now) {
		t.Fatal("tenant a's quarantine verdict leaked to tenant b")
	}
	// The default (empty) tenant is its own scope too.
	if c.Negative(k, "", now) {
		t.Fatal("tenant a's quarantine verdict leaked to the default tenant")
	}
}

func TestNegativeCacheDisabledAndCapped(t *testing.T) {
	// No NegTTL: PutNegative is a no-op.
	off := New(Config{MaxBytes: 1 << 20, Shards: 1})
	now := time.Now()
	off.PutNegative(key("a", "t", 1), "a", now)
	if off.Negative(key("a", "t", 1), "a", now) {
		t.Fatal("negative cache active without NegTTL")
	}

	// Capped: a storm of distinct poison digests cannot grow without bound.
	on := New(Config{MaxBytes: 1 << 20, Shards: 1, NegTTL: time.Minute})
	for d := uint64(0); d < 3*maxNegativesPerShard; d++ {
		on.PutNegative(key("a", "t", d), "a", now)
	}
	if n := on.Stats().NegEntries; n > maxNegativesPerShard {
		t.Fatalf("negative entries %d exceed per-shard cap %d", n, maxNegativesPerShard)
	}
}

func TestDigestImage(t *testing.T) {
	a := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	b := tensor.FromSlice([]float32{1, 2, 3, 4}, 1, 2, 2)
	if DigestImage(a) != DigestImage(b) {
		t.Fatal("identical tensors digest differently")
	}
	c := tensor.FromSlice([]float32{1, 2, 3, 5}, 1, 2, 2)
	if DigestImage(a) == DigestImage(c) {
		t.Fatal("different data digests collide")
	}
	d := tensor.FromSlice([]float32{1, 2, 3, 4}, 2, 2, 1)
	if DigestImage(a) == DigestImage(d) {
		t.Fatal("different shapes digest identically")
	}
	if DigestImage(nil) == 0 {
		t.Fatal("nil digest must be the offset basis, not 0")
	}
}

func TestShardRounding(t *testing.T) {
	for _, tc := range []struct{ in, want int }{
		{0, 16}, {1, 1}, {2, 2}, {3, 4}, {16, 16}, {17, 32},
	} {
		c := New(Config{MaxBytes: 1 << 20, Shards: tc.in})
		if len(c.shards) != tc.want {
			t.Errorf("Shards %d -> %d shards, want %d", tc.in, len(c.shards), tc.want)
		}
	}
}

// TestConcurrentAccess hammers Get/Put/Stats from many goroutines; run
// with -race. Afterwards the books must balance: hits+misses equals the
// number of Gets issued.
func TestConcurrentAccess(t *testing.T) {
	c := New(Config{MaxBytes: 64 << 10, TTL: time.Minute, Shards: 8})
	const (
		goroutines = 8
		iters      = 2000
	)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			now := time.Now()
			for i := 0; i < iters; i++ {
				k := key(fmt.Sprintf("m@v%d#s", i%3), "t", uint64(i%97))
				if _, _, ok := c.Get(k, now); !ok {
					c.Put(k, i, now)
				}
				if i%256 == 0 {
					_ = c.Stats()
				}
			}
		}(g)
	}
	wg.Wait()
	st := c.Stats()
	if st.Hits+st.Misses != goroutines*iters {
		t.Fatalf("hits %d + misses %d != %d gets", st.Hits, st.Misses, goroutines*iters)
	}
	if st.Bytes > st.MaxBytes {
		t.Fatalf("bytes %d over budget %d", st.Bytes, st.MaxBytes)
	}
}

// TestGetAllocs asserts the allocation-free hot path: a hit, a miss, and a
// Stats-free Put-replace must not allocate.
func TestGetAllocs(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20, TTL: time.Minute, Shards: 4})
	now := time.Now()
	k := key("m@v1#ab", "patrol", 12345)
	c.Put(k, "payload", now)
	miss := key("m@v1#ab", "patrol", 54321)

	if n := testing.AllocsPerRun(1000, func() {
		if _, _, ok := c.Get(k, now); !ok {
			t.Fatal("miss on resident key")
		}
	}); n != 0 {
		t.Fatalf("Get(hit) allocates %.1f/op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() {
		if _, _, ok := c.Get(miss, now); ok {
			t.Fatal("hit on absent key")
		}
	}); n != 0 {
		t.Fatalf("Get(miss) allocates %.1f/op, want 0", n)
	}
}
