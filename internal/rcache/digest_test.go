package rcache

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"

	"itask/internal/kernels"
	"itask/internal/tensor"
)

func randImage(r *rand.Rand, shape ...int) *tensor.Tensor {
	t := tensor.New(shape...)
	for i := range t.Data {
		t.Data[i] = r.Float32()*2 - 1
	}
	return t
}

func framePayload(img *tensor.Tensor) []byte {
	b := make([]byte, 4*len(img.Data))
	for i, v := range img.Data {
		binary.LittleEndian.PutUint32(b[4*i:], math.Float32bits(v))
	}
	return b
}

// DigestFrame over a tensor's wire encoding must equal DigestImage over the
// tensor itself: the gateway routes binary bodies by the former, shards key
// the result cache by the latter, and a mismatch would silently break
// shard-local cache affinity.
func TestDigestFrameMatchesDigestImage(t *testing.T) {
	r := rand.New(rand.NewSource(9))
	for _, shape := range [][]int{{3, 8, 8}, {3, 32, 32}, {3, 64, 64}, {1, 2, 2}} {
		img := randImage(r, shape...)
		img.Data[0] = float32(math.NaN())
		img.Data[1] = float32(math.Copysign(0, -1))
		di := DigestImage(img)
		df := DigestFrame(img.Shape, framePayload(img))
		if di != df {
			t.Fatalf("shape %v: DigestImage %x != DigestFrame %x", shape, di, df)
		}
	}
	// Shape feeds the seed: same payload, different geometry, different digest.
	a := randImage(r, 3, 8, 8)
	if DigestFrame([]int{3, 8, 8}, framePayload(a)) == DigestFrame([]int{8, 8, 3}, framePayload(a)) {
		t.Fatal("shape permutation not reflected in frame digest")
	}
}

// BenchmarkDigestImage compares digest v2 (multi-lane, vectorized where the
// host allows) against the serial FNV-1a loop digest v1 used before the
// kernel existed, on a 3×64×64 frame. CI runs this single-core; the ratio,
// not absolute ns/op, is the number that matters (BENCH_ingress.json).
func BenchmarkDigestImage(b *testing.B) {
	img := randImage(rand.New(rand.NewSource(1)), 3, 64, 64)
	bytes := int64(4 * len(img.Data))
	b.Run("v1_scalar", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			sinkDigest = kernels.HashF32Scalar(digestSeed(img.Shape), img.Data)
		}
	})
	b.Run("v2", func(b *testing.B) {
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			sinkDigest = DigestImage(img)
		}
	})
	b.Run("v2_frame", func(b *testing.B) {
		payload := framePayload(img)
		b.SetBytes(bytes)
		for i := 0; i < b.N; i++ {
			sinkDigest = DigestFrame(img.Shape, payload)
		}
	})
}

var sinkDigest uint64
