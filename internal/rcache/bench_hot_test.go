package rcache

import (
	"fmt"
	"testing"
	"time"

	"itask/internal/freq"
)

// benchHotCache builds a warm cache holding n entries under one artifact.
// With hot enabled, every entry is read past the promotion threshold so the
// timed loop measures steady-state replica reads, not the detector ramp.
func benchHotCache(b *testing.B, n int, hot bool) (*Cache, []Key) {
	b.Helper()
	cfg := Config{MaxBytes: 64 << 20, Shards: 8}
	if hot {
		cfg.HotThreshold = 4
		cfg.HotMaxBytes = 8 << 20
	}
	c := New(cfg)
	now := time.Unix(1, 0)
	keys := make([]Key, n)
	for i := range keys {
		keys[i] = Key{Artifact: "m@v1#aa", Task: "patrol", Digest: freq.Mix64(uint64(i) + 1)}
		c.Put(keys[i], i, now)
		if hot {
			for r := 0; r < cfg.HotThreshold+2; r++ {
				c.Get(keys[i], now)
			}
		}
	}
	if hot {
		if st := c.Stats(); st.HotEntries != n {
			b.Fatalf("warmup promoted %d/%d entries", st.HotEntries, n)
		}
	}
	return c, keys
}

// BenchmarkCacheGetHot1 isolates the read path the serve-level hot1 workload
// exercises, without the per-request overhead (digesting, routing, metrics)
// that both serve variants pay identically: every reader hits one viral key.
// replicated serves it from the lock-free per-P table; sharded takes the
// shard mutex and touches the entry's LRU links and hit counter — one
// shared cache line per read even before the mutex is contended.
func BenchmarkCacheGetHot1(b *testing.B) {
	for _, hot := range []bool{true, false} {
		name := "sharded"
		if hot {
			name = "replicated"
		}
		b.Run(name, func(b *testing.B) {
			c, keys := benchHotCache(b, 1, hot)
			now := time.Unix(2, 0)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					if _, _, ok := c.Get(keys[0], now); !ok {
						b.Fatal("lost the hot entry")
					}
				}
			})
		})
	}
}

// BenchmarkCacheGetHot8 is the same isolation over 8 viral keys (the dup50
// hot set size): readers rotate through all of them, so the sharded variant
// spreads across shards while the replicated variant still reads one
// immutable table.
func BenchmarkCacheGetHot8(b *testing.B) {
	for _, hot := range []bool{true, false} {
		name := "sharded"
		if hot {
			name = "replicated"
		}
		b.Run(name, func(b *testing.B) {
			c, keys := benchHotCache(b, 8, hot)
			now := time.Unix(2, 0)
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var n uint64
				for pb.Next() {
					n++
					if _, _, ok := c.Get(keys[n&7], now); !ok {
						b.Fatal("lost a hot entry")
					}
				}
			})
		})
	}
}

// BenchmarkCacheReplicatedProbe measures the replica-only probe the
// singleflight fast path uses (Cache.Replicated): one immutable-table load,
// one map lookup, one striped counter add. The hit must stay 0 allocs/op.
func BenchmarkCacheReplicatedProbe(b *testing.B) {
	c, keys := benchHotCache(b, 1, true)
	now := time.Unix(2, 0)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		for pb.Next() {
			if _, _, ok := c.Replicated(keys[0], now); !ok {
				b.Fatal("lost the hot entry")
			}
		}
	})
}

// BenchmarkCachePromotionChurn stresses the mutation side: promotions,
// byte-pressure evictions, and artifact retirement under a tight replica
// budget, to keep the copy-on-write publish cost visible in profiles.
func BenchmarkCachePromotionChurn(b *testing.B) {
	cfg := Config{MaxBytes: 1 << 20, Shards: 8, HotThreshold: 2, HotMaxBytes: 4 * defaultEntrySize}
	c := New(cfg)
	now := time.Unix(1, 0)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		// One fresh artifact per 64-op window: retirement is permanent (the
		// resurrection guard), so reusing a retired name would freeze the
		// promotion path this bench exists to measure.
		artifact := fmt.Sprintf("m@v%d#aa", i>>6)
		k := Key{Artifact: artifact, Task: "patrol", Digest: freq.Mix64(uint64(i))}
		c.Put(k, i, now)
		c.Get(k, now)
		c.Get(k, now)
		c.Get(k, now)
		if i&63 == 63 {
			c.InvalidateArtifact(artifact)
		}
	}
}
