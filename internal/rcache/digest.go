package rcache

import (
	"itask/internal/kernels"

	"itask/internal/tensor"
)

// fnvOffset64 is the FNV-1a 64-bit offset basis — the digest seed and the
// value a nil tensor digests to.
const fnvOffset64 = kernels.FNVOffset64

// digestSeed folds the tensor shape into the hash seed with plain serial
// FNV-1a (shapes are three ints; no point vectorizing), so frames with the
// same data but different geometry digest apart.
func digestSeed(shape []int) uint64 {
	h := uint64(fnvOffset64)
	for _, d := range shape {
		h ^= uint64(uint32(d))
		h *= kernels.FNVPrime64
	}
	return h
}

// DigestImage content-hashes an image tensor — its shape and the bit
// patterns of its float data — with the multi-lane FNV-1a kernel
// (kernels.HashF32). Identical frames digest identically regardless of
// tensor identity; NaN payloads and signed zeros hash by bit pattern, so a
// bitwise-identical tensor always matches. Allocation-free. A nil tensor
// digests to the offset basis.
//
// This is digest v2: the lane-interleaved value differs from the serial
// FNV-1a digest v1 produced before the vectorized kernel existed. Digests
// only ever key in-process state (the result cache, gateway routing), so
// the change is safe — but anything persisting digests across versions
// must not assume v1 values.
func DigestImage(img *tensor.Tensor) uint64 {
	if img == nil {
		return fnvOffset64
	}
	return kernels.HashF32(digestSeed(img.Shape), img.Data)
}

// DigestFrame is DigestImage over wire bytes: payload is the raw
// little-endian float32 data of a binary detect frame, hashed without
// materializing a tensor. For any tensor t, DigestFrame(t.Shape, le(t.Data))
// == DigestImage(t) — that equivalence (pinned by tests, and guaranteed by
// kernels.HashWordsLE on every architecture) is what lets the gateway route
// binary requests by content digest straight off the wire. len(payload)
// must be a multiple of 4.
func DigestFrame(shape []int, payload []byte) uint64 {
	return kernels.HashWordsLE(digestSeed(shape), payload)
}
