package rcache

import (
	"math"

	"itask/internal/tensor"
)

// FNV-1a 64-bit parameters.
const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// DigestImage content-hashes an image tensor — its shape and the bit
// patterns of its float data — with 64-bit FNV-1a. Identical frames digest
// identically regardless of tensor identity; NaN payloads and signed zeros
// hash by bit pattern, so a bitwise-identical tensor always matches.
// Allocation-free. A nil tensor digests to the offset basis.
func DigestImage(img *tensor.Tensor) uint64 {
	if img == nil {
		return fnvOffset64
	}
	h := uint64(fnvOffset64)
	for _, d := range img.Shape {
		h ^= uint64(uint32(d))
		h *= fnvPrime64
	}
	for _, v := range img.Data {
		h ^= uint64(math.Float32bits(v))
		h *= fnvPrime64
	}
	return h
}
