package rcache

import (
	"runtime"
	"sync"
	"sync/atomic"
	"time"
	"unsafe"

	"itask/internal/freq"
)

// hot.go: the contention-adaptive hot tier. PR 6 fixed hot-content skew
// *across* shards (gateway hot-key replication); inside one serve process a
// viral digest still funnels every reader through a single cache shard's
// mutex — Get takes the lock, relinks the LRU, and bumps a per-shard hit
// counter, so N concurrent readers of one frame serialize on one lock and
// bounce two cache lines no matter how many shards the cache has. After
// Doppel's contention-adaptive split-phase design (Narula et al.), entries
// whose digests the MJRTY estimator (internal/freq, shared with the
// gateway) proves hot are *promoted* out of their shard into a replicated
// read-only table:
//
//   - The table itself is an immutable map behind an atomic pointer
//     (copy-on-write: promotion, demotion, and invalidation build a fresh
//     map and publish it). Readers load the pointer and look up — no mutex,
//     and because the map is never written in place, the lines they touch
//     stay in shared state across every core instead of ping-ponging.
//   - Hit accounting is commutative per-P counters: each promoted entry
//     carries a GOMAXPROCS-sized array of cache-line-padded counters, and a
//     reader increments the stripe picked by its own stack address — two
//     concurrently running goroutines land on different lines with high
//     probability. Totals are reconciled on demand (Stats, and the decay
//     sweep that demotes entries whose replicated traffic dried up).
//   - Promoted hits skip the LRU entirely. Recency tracking is what forces
//     writes on a read path; for the handful of provably-hot entries the
//     decay sweep is the eviction signal instead.
//
// The tier never weakens the cache's version discipline: replica keys pin
// full versioned artifact IDs exactly like shard entries, and
// InvalidateArtifact (driven by registry publish/demote/rollback through
// the serve layer's retirement hook, before the new routing snapshot
// serves) retires every replica of the artifact in the same copy-on-write
// publish that sweeps the shards — a promoted entry cannot outlive its
// version.

// hotStripePad is one cache-line-padded commutative hit counter.
type hotStripePad struct {
	n atomic.Uint64
	_ [64 - 8]byte
}

// hotEntry is one promoted (replicated, read-only) cache entry. All fields
// except hits and swept are immutable after promotion; hits are the per-P
// commutative counters, and swept is the reconciler's bookkeeping (only
// ever touched under hotTier.mu).
type hotEntry struct {
	payload any
	model   string
	bytes   int64
	expires time.Time // zero when the cache has no TTL
	hits    []hotStripePad
	// swept is the hit total at the last decay sweep; fresh marks an entry
	// promoted since the last sweep (it gets one full window before the
	// "did it earn threshold replicated hits" demotion test applies).
	swept uint64
	fresh bool
}

func (e *hotEntry) total() uint64 {
	var t uint64
	for i := range e.hits {
		t += e.hits[i].n.Load()
	}
	return t
}

// hotTable is one immutable published generation of the replica table.
type hotTable struct {
	entries map[Key]*hotEntry
	bytes   int64
}

// hotTier owns the replica table, the shared promotion detector, and the
// tier counters. All mutations serialize on mu and publish fresh tables;
// the read path touches only table (an atomic load) and an entry's own
// counter stripe.
type hotTier struct {
	tracker  *freq.Tracker
	maxBytes int64

	table atomic.Pointer[hotTable]
	mu    sync.Mutex
	// retired is every artifact ID ever passed to retireArtifact. Promotion
	// refuses retired artifacts, which closes the race where a reader that
	// routed before a registry swap promotes its (now retired) version after
	// the swap's retirement pass already ran — without this, such a replica
	// would linger until the next decay sweep. Growth is one string per
	// publish/demotion, the same asymptotics as the registry's own version
	// history. Guarded by mu.
	retired map[string]struct{}

	stripes    int
	stripeMask uint64

	promotions atomic.Uint64
	demotions  atomic.Uint64
	// retiredHits folds demoted entries' accumulated hit counters so
	// Stats.HotHits stays monotonic across promotion churn. Only written
	// under mu.
	retiredHits atomic.Uint64
}

// newHotTier builds the tier. threshold <= 0 disables it (nil tier).
func newHotTier(threshold, decay int, maxBytes int64, stripes int) *hotTier {
	if threshold <= 0 {
		return nil
	}
	if stripes <= 0 {
		stripes = runtime.GOMAXPROCS(0)
	}
	pow := 1
	for pow < stripes {
		pow <<= 1
	}
	t := &hotTier{
		tracker:    freq.New(threshold, freq.DefaultSlots, decay),
		maxBytes:   maxBytes,
		stripes:    pow,
		stripeMask: uint64(pow - 1),
		retired:    map[string]struct{}{},
	}
	t.table.Store(&hotTable{entries: map[Key]*hotEntry{}})
	return t
}

// stripeIdx picks this goroutine's counter stripe from the address of a
// stack variable: goroutine stacks are distinct allocations, so concurrent
// readers spread across stripes without any shared state, a runtime hook,
// or an allocation (the variable never escapes — it is only ever folded
// into a uintptr).
func (t *hotTier) stripeIdx() uint64 {
	var anchor byte
	return freq.Mix64(uint64(uintptr(unsafe.Pointer(&anchor)))) & t.stripeMask
}

// get is the replicated read path: one atomic pointer load, one lookup in
// an immutable map, one padded per-P counter increment. No mutex, no shared
// mutable cache line, no allocation. Expired replicas miss (the caller
// falls through to the sharded path) and are demoted out of band.
func (t *hotTier) get(k Key, now time.Time) (payload any, model string, ok bool) {
	e := t.table.Load().entries[k]
	if e == nil {
		return nil, "", false
	}
	if !e.expires.IsZero() && now.After(e.expires) {
		t.dropExpired(k, e)
		return nil, "", false
	}
	e.hits[t.stripeIdx()].n.Add(1)
	return e.payload, e.model, true
}

// record counts one slow-path arrival of k's digest with the promotion
// detector and reports whether the digest is currently hot. Replicated hits
// never call record — the detector's slot mutex is exactly the kind of
// shared line the tier exists to avoid — so a promoted digest stops feeding
// the estimator and its slot decays on other traffic's clock; the decay
// sweep (run when the tracker crosses a window boundary) uses the replica's
// own hit counters to decide whether it is still earning its promotion.
func (t *hotTier) record(k Key, now time.Time) bool {
	hot, swept := t.tracker.Record(k.Digest)
	if swept {
		t.sweep(now)
	}
	return hot
}

// promote copies an entry into a fresh table generation. Entries over the
// tier budget are refused; when the budget is tight, coldest-first (fewest
// replicated hits) incumbents are demoted to make room, but an incumbent is
// never displaced by a colder candidate.
func (t *hotTier) promote(k Key, payload any, model string, bytes int64, expires time.Time) {
	if bytes > t.maxBytes {
		return
	}
	t.mu.Lock()
	defer t.mu.Unlock()
	if _, dead := t.retired[k.Artifact]; dead {
		return // never resurrect a retired version's replicas
	}
	cur := t.table.Load()
	if e := cur.entries[k]; e != nil {
		if e.payload == payload && e.model == model {
			return // already replicated, nothing changed
		}
		// Refreshed fill (e.g. a re-execution after TTL expiry): republish
		// with the new payload, keeping the hit history.
		next := cloneHotTable(cur)
		ne := *e
		ne.payload, ne.model, ne.bytes, ne.expires = payload, model, bytes, expires
		next.bytes += bytes - e.bytes
		next.entries[k] = &ne
		t.table.Store(next)
		return
	}
	next := cloneHotTable(cur)
	for next.bytes+bytes > t.maxBytes {
		victim, ve := coldestHot(next)
		if ve == nil || ve.fresh || ve.total()-ve.swept >= uint64(t.tracker.Threshold()) {
			// Every incumbent is inside its grace window or still earning
			// threshold-rate traffic; the newcomer waits for the next sweep
			// to free room.
			return
		}
		delete(next.entries, victim)
		next.bytes -= ve.bytes
		t.retiredHits.Add(ve.total())
		t.demotions.Add(1)
	}
	next.entries[k] = &hotEntry{
		payload: payload,
		model:   model,
		bytes:   bytes,
		expires: expires,
		hits:    make([]hotStripePad, t.stripes),
		fresh:   true,
	}
	next.bytes += bytes
	t.table.Store(next)
	t.promotions.Add(1)
}

// coldestHot returns the entry with the fewest accumulated hits.
func coldestHot(tbl *hotTable) (Key, *hotEntry) {
	var ck Key
	var ce *hotEntry
	var cold uint64
	for k, e := range tbl.entries {
		if tot := e.total(); ce == nil || tot < cold {
			ck, ce, cold = k, e, tot
		}
	}
	return ck, ce
}

// sweep demotes replicas that stopped earning their keep: an entry (past
// its first full window) whose replicated hits since the last sweep fell
// below the promotion threshold, or whose TTL lapsed, is dropped back to
// the sharded tier. Runs once per tracker decay window, off the replicated
// read path.
func (t *hotTier) sweep(now time.Time) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.table.Load()
	if len(cur.entries) == 0 {
		return
	}
	threshold := uint64(t.tracker.Threshold())
	var doomed []Key
	for k, e := range cur.entries {
		expired := !e.expires.IsZero() && now.After(e.expires)
		tot := e.total()
		if expired || (!e.fresh && tot-e.swept < threshold) {
			doomed = append(doomed, k)
			continue
		}
		e.swept = tot
		e.fresh = false
	}
	if len(doomed) == 0 {
		return
	}
	next := cloneHotTable(cur)
	for _, k := range doomed {
		e := next.entries[k]
		next.bytes -= e.bytes
		delete(next.entries, k)
		t.retiredHits.Add(e.total())
		t.demotions.Add(1)
	}
	t.table.Store(next)
}

// dropExpired demotes one replica whose TTL lapsed under a reader.
func (t *hotTier) dropExpired(k Key, e *hotEntry) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.table.Load()
	if cur.entries[k] != e {
		return // already replaced or demoted
	}
	next := cloneHotTable(cur)
	next.bytes -= e.bytes
	delete(next.entries, k)
	t.retiredHits.Add(e.total())
	t.demotions.Add(1)
	t.table.Store(next)
}

// invalidate drops the replica for k, if any.
func (t *hotTier) invalidate(k Key) {
	t.mu.Lock()
	defer t.mu.Unlock()
	cur := t.table.Load()
	e := cur.entries[k]
	if e == nil {
		return
	}
	next := cloneHotTable(cur)
	next.bytes -= e.bytes
	delete(next.entries, k)
	t.retiredHits.Add(e.total())
	t.demotions.Add(1)
	t.table.Store(next)
}

// retireArtifact drops every replica pinned to one versioned artifact ID in
// a single table publish, so after it returns no reader can find any of the
// artifact's entries. Returns the number of replicas retired.
func (t *hotTier) retireArtifact(artifact string) int {
	t.mu.Lock()
	defer t.mu.Unlock()
	t.retired[artifact] = struct{}{}
	cur := t.table.Load()
	var doomed []Key
	for k := range cur.entries {
		if k.Artifact == artifact {
			doomed = append(doomed, k)
		}
	}
	if len(doomed) == 0 {
		return 0
	}
	next := cloneHotTable(cur)
	for _, k := range doomed {
		e := next.entries[k]
		next.bytes -= e.bytes
		delete(next.entries, k)
		t.retiredHits.Add(e.total())
		t.demotions.Add(1)
	}
	t.table.Store(next)
	return len(doomed)
}

func cloneHotTable(cur *hotTable) *hotTable {
	next := &hotTable{entries: make(map[Key]*hotEntry, len(cur.entries)+1), bytes: cur.bytes}
	for k, e := range cur.entries {
		next.entries[k] = e
	}
	return next
}

// snapshotInto reconciles the tier's commutative counters into a Stats
// snapshot: live entries' striped hit counters are summed on demand, and
// retiredHits carries the totals of demoted entries so HotHits (and the
// Hits aggregate it feeds) never moves backward under promotion churn.
func (t *hotTier) snapshotInto(st *Stats) {
	tbl := t.table.Load()
	st.HotEntries = len(tbl.entries)
	st.HotBytes = tbl.bytes
	st.HotMaxBytes = t.maxBytes
	st.HotPromotions = t.promotions.Load()
	st.HotDemotions = t.demotions.Load()
	var hits uint64
	for _, e := range tbl.entries {
		hits += e.total()
	}
	st.HotHits = hits + t.retiredHits.Load()
	st.Hits += st.HotHits
}
