package rcache

import (
	"fmt"
	"sync"
	"testing"
	"time"
)

// hotConfig is a tier-enabled cache sized so promotion trips fast: threshold
// 4 arrivals within a decay window of 64.
func hotConfig() Config {
	return Config{MaxBytes: 1 << 20, Shards: 4, HotThreshold: 4, HotDecay: 64, HotMaxBytes: 1 << 16}
}

func hotStats(c *Cache) Stats { return c.Stats() }

func TestHotPromotionOnRepeatedGets(t *testing.T) {
	c := New(hotConfig())
	now := time.Now()
	k := key("m@v1#ab", "patrol", 42)
	c.Put(k, "viral", now)
	for i := 0; i < 4; i++ {
		if _, _, ok := c.Get(k, now); !ok {
			t.Fatalf("miss on arrival %d", i)
		}
	}
	st := hotStats(c)
	if st.HotPromotions != 1 || st.HotEntries != 1 {
		t.Fatalf("after threshold gets: promotions=%d entries=%d, want 1/1", st.HotPromotions, st.HotEntries)
	}
	if st.HotBytes <= 0 || st.HotBytes > st.HotMaxBytes {
		t.Fatalf("replica bytes %d out of (0, %d]", st.HotBytes, st.HotMaxBytes)
	}
	// Subsequent gets are replicated hits.
	before := hotStats(c).HotHits
	got, model, ok := c.Get(k, now)
	if !ok || got != "viral" || model != "m@v1#ab" {
		t.Fatalf("replicated Get = (%v, %q, %v)", got, model, ok)
	}
	if after := hotStats(c).HotHits; after != before+1 {
		t.Fatalf("HotHits %d -> %d, want +1", before, after)
	}
	// Replicated probes the replica table only.
	if _, _, ok := c.Replicated(k, now); !ok {
		t.Fatal("Replicated missed a promoted key")
	}
	if _, _, ok := c.Replicated(key("m@v1#ab", "patrol", 43), now); ok {
		t.Fatal("Replicated hit an unpromoted key")
	}
}

func TestHotFillPromotion(t *testing.T) {
	// Misses count arrivals too: a digest that goes hot while its result is
	// in flight is promoted by the eventual Put.
	c := New(hotConfig())
	now := time.Now()
	k := key("m@v1#ab", "patrol", 77)
	for i := 0; i < 5; i++ {
		c.Get(k, now)
	}
	c.Put(k, "filled", now)
	if st := hotStats(c); st.HotPromotions != 1 {
		t.Fatalf("fill after hot misses did not promote: promotions=%d", st.HotPromotions)
	}
	if _, _, ok := c.Replicated(k, now); !ok {
		t.Fatal("filled entry not in replica table")
	}
}

func TestHotReplicatedGetZeroAlloc(t *testing.T) {
	c := New(hotConfig())
	now := time.Now()
	k := key("m@v1#ab", "patrol", 99)
	c.Put(k, "p", now)
	for i := 0; i < 4; i++ {
		c.Get(k, now)
	}
	if _, _, ok := c.Replicated(k, now); !ok {
		t.Fatal("not promoted")
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, ok := c.Get(k, now); !ok {
			t.Fatal("replicated miss")
		}
	}); n != 0 {
		t.Fatalf("replicated Get allocates %v/op, want 0", n)
	}
	if n := testing.AllocsPerRun(100, func() {
		if _, _, ok := c.Replicated(k, now); !ok {
			t.Fatal("replicated miss")
		}
	}); n != 0 {
		t.Fatalf("Replicated allocates %v/op, want 0", n)
	}
}

func TestHotMarkHotPrePromotes(t *testing.T) {
	c := New(hotConfig())
	now := time.Now()
	k := key("m@v1#ab", "patrol", 7)
	c.Put(k, "p", now)
	// One upstream hint replaces threshold-many local arrivals.
	c.MarkHot(k, now)
	if st := hotStats(c); st.HotPromotions != 1 {
		t.Fatalf("MarkHot on a cached key did not promote: promotions=%d", st.HotPromotions)
	}
	// A hint for an uncached key just heats the detector; the fill promotes.
	k2 := key("m@v1#ab", "patrol", 8)
	c.MarkHot(k2, now)
	if st := hotStats(c); st.HotPromotions != 1 {
		t.Fatalf("MarkHot on an uncached key promoted: promotions=%d", st.HotPromotions)
	}
	c.Put(k2, "p2", now)
	if _, _, ok := c.Replicated(k2, now); !ok {
		t.Fatal("fill after MarkHot not promoted")
	}
}

func TestHotDecayDemotion(t *testing.T) {
	// A promoted entry whose replicated traffic dries up is demoted at a
	// decay-sweep boundary; one that keeps earning threshold hits survives.
	cfg := hotConfig()
	cfg.HotDecay = 16
	c := New(cfg)
	now := time.Now()
	kHot := key("m@v1#ab", "patrol", 1)
	kDry := key("m@v1#ab", "patrol", 2)
	c.Put(kHot, "stays", now)
	c.Put(kDry, "dries", now)
	for i := 0; i < 4; i++ {
		c.Get(kHot, now)
		c.Get(kDry, now)
	}
	if st := hotStats(c); st.HotEntries != 2 {
		t.Fatalf("both keys should be promoted: entries=%d", st.HotEntries)
	}
	// Run whole decay windows of traffic: kHot keeps taking replicated hits,
	// kDry takes none, and cold slow-path keys advance the sweep clock.
	cold := uint64(0x1000)
	for w := 0; w < 3; w++ {
		for i := 0; i < 8; i++ {
			c.Get(kHot, now)
		}
		for i := 0; i < 16; i++ {
			cold++
			c.Get(key("m@v1#ab", "patrol", cold), now)
		}
	}
	st := hotStats(c)
	if st.HotEntries != 1 {
		t.Fatalf("after dry windows: entries=%d, want 1 (dry key demoted)", st.HotEntries)
	}
	if _, _, ok := c.Replicated(kHot, now); !ok {
		t.Fatal("earning key was demoted")
	}
	if _, _, ok := c.Replicated(kDry, now); ok {
		t.Fatal("dry key survived the sweep")
	}
	if st.HotDemotions == 0 {
		t.Fatal("demotion not counted")
	}
	// Demoted key still serves from the sharded tier.
	if _, _, ok := c.Get(kDry, now); !ok {
		t.Fatal("demoted key lost its shard entry")
	}
}

func TestHotBytePressure(t *testing.T) {
	// The tier refuses entries over budget and never displaces an incumbent
	// still earning threshold traffic with a colder newcomer.
	cfg := hotConfig()
	cfg.HotMaxBytes = 600
	cfg.SizeOf = func(any) int64 { return 512 }
	c := New(cfg)
	now := time.Now()
	k1 := key("m@v1#ab", "patrol", 1)
	k2 := key("m@v1#ab", "patrol", 2)
	c.Put(k1, "first", now)
	c.Put(k2, "second", now)
	for i := 0; i < 4; i++ {
		c.Get(k1, now)
	}
	if st := hotStats(c); st.HotEntries != 1 || st.HotBytes != 512 {
		t.Fatalf("entries=%d bytes=%d, want 1/512", st.HotEntries, st.HotBytes)
	}
	// k2 goes hot but there is no room and k1 is fresh (protected this
	// window): k2 stays sharded.
	for i := 0; i < 4; i++ {
		c.Get(k2, now)
	}
	st := hotStats(c)
	if st.HotEntries != 1 {
		t.Fatalf("byte pressure ignored: entries=%d bytes=%d", st.HotEntries, st.HotBytes)
	}
	if _, _, ok := c.Replicated(k1, now); !ok {
		t.Fatal("incumbent displaced under pressure")
	}
	if st.HotBytes > st.HotMaxBytes {
		t.Fatalf("tier over budget: %d > %d", st.HotBytes, st.HotMaxBytes)
	}
}

func TestHotArtifactRetirement(t *testing.T) {
	c := New(hotConfig())
	now := time.Now()
	kOld := key("m@v1#ab", "patrol", 5)
	kOther := key("n@v1#cd", "patrol", 6)
	c.Put(kOld, "old", now)
	c.Put(kOther, "other", now)
	for i := 0; i < 4; i++ {
		c.Get(kOld, now)
		c.Get(kOther, now)
	}
	if st := hotStats(c); st.HotEntries != 2 {
		t.Fatalf("setup: entries=%d, want 2", st.HotEntries)
	}
	removed := c.InvalidateArtifact("m@v1#ab")
	if removed != 2 { // one replica + one shard entry
		t.Fatalf("InvalidateArtifact removed %d, want 2", removed)
	}
	if _, _, ok := c.Replicated(kOld, now); ok {
		t.Fatal("retired artifact's replica still served")
	}
	if _, _, ok := c.Get(kOld, now); ok {
		t.Fatal("retired artifact's shard entry still served")
	}
	if _, _, ok := c.Replicated(kOther, now); !ok {
		t.Fatal("unrelated artifact's replica was retired")
	}
	// Invalidate drops a single replica too.
	c.Invalidate(kOther)
	if _, _, ok := c.Replicated(kOther, now); ok {
		t.Fatal("Invalidate left the replica behind")
	}
}

func TestHotTTLExpiryDemotes(t *testing.T) {
	cfg := hotConfig()
	cfg.TTL = time.Second
	c := New(cfg)
	now := time.Now()
	k := key("m@v1#ab", "patrol", 11)
	c.Put(k, "p", now)
	for i := 0; i < 4; i++ {
		c.Get(k, now)
	}
	if _, _, ok := c.Replicated(k, now); !ok {
		t.Fatal("not promoted")
	}
	late := now.Add(2 * time.Second)
	if _, _, ok := c.Replicated(k, late); ok {
		t.Fatal("replica served past TTL")
	}
	if _, _, ok := c.Get(k, late); ok {
		t.Fatal("shard entry served past TTL")
	}
	st := hotStats(c)
	if st.HotEntries != 0 || st.HotBytes != 0 {
		t.Fatalf("expired replica leaked: entries=%d bytes=%d", st.HotEntries, st.HotBytes)
	}
}

// TestHotBooksBalance churns promotion/demotion/retirement concurrently with
// replicated readers and checks the accounting invariants: replica bytes
// return to zero when everything is retired, demotions never exceed
// promotions, and HotHits is monotonic (run with -race).
func TestHotBooksBalance(t *testing.T) {
	cfg := hotConfig()
	cfg.HotDecay = 32
	c := New(cfg)
	now := time.Now()
	const artifacts = 4
	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				art := fmt.Sprintf("m@v%d#x", i%artifacts)
				k := key(art, "patrol", uint64(g*8+i%4))
				c.Put(k, "p", now)
				c.Get(k, now)
				c.Get(k, now)
				c.Replicated(k, now)
				if i%50 == 0 {
					c.InvalidateArtifact(art)
				}
			}
		}(g)
	}
	time.Sleep(50 * time.Millisecond)
	close(stop)
	wg.Wait()
	for i := 0; i < artifacts; i++ {
		c.InvalidateArtifact(fmt.Sprintf("m@v%d#x", i))
	}
	st := hotStats(c)
	if st.HotEntries != 0 || st.HotBytes != 0 {
		t.Fatalf("books don't balance after retiring everything: entries=%d bytes=%d", st.HotEntries, st.HotBytes)
	}
	if st.HotDemotions > st.HotPromotions {
		t.Fatalf("demotions %d > promotions %d", st.HotDemotions, st.HotPromotions)
	}
	if st.Hits < st.HotHits {
		t.Fatalf("Hits %d excludes HotHits %d", st.Hits, st.HotHits)
	}
}

func TestHotDisabledByDefault(t *testing.T) {
	c := New(Config{MaxBytes: 1 << 20})
	now := time.Now()
	k := key("m@v1#ab", "patrol", 1)
	c.Put(k, "p", now)
	for i := 0; i < 100; i++ {
		c.Get(k, now)
	}
	c.MarkHot(k, now) // no-op, must not panic
	if _, _, ok := c.Replicated(k, now); ok {
		t.Fatal("disabled tier replicated an entry")
	}
	st := hotStats(c)
	if st.HotEntries != 0 || st.HotPromotions != 0 || st.HotMaxBytes != 0 {
		t.Fatalf("disabled tier reported stats: %+v", st)
	}
}
