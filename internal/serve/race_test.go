package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"itask/internal/geom"
	"itask/internal/sched"
	"itask/internal/tensor"
)

// schedBackend adapts a real sched.Scheduler as a serve.Backend, mirroring
// how the root itask package wires the pipeline in — so this hammer test
// exercises the actual scheduler lock under the actual serving layer.
type schedBackend struct {
	s *sched.Scheduler
}

func (b *schedBackend) Route(task string) (string, error) {
	return b.s.Route(sched.Request{Task: task})
}

func (b *schedBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	dets, m, err := b.s.DetectBatchOn(variant, imgs)
	if err != nil {
		return nil, "", err
	}
	out := make([]any, len(dets))
	for i := range dets {
		out[i] = dets[i]
	}
	return out, m.Name, nil
}

func (b *schedBackend) CacheStats() sched.CacheStats { return b.s.Stats() }

// TestServeSchedulerRaceHammer floods a server backed by a real scheduler
// from many goroutines across many tasks (forcing cache contention and
// eviction), while other goroutines concurrently register late models and
// poll stats. Run with -race. Afterwards the books must balance: every
// admitted request is accounted completed/failed/shed, and the scheduler's
// CacheStats saw exactly one hit-or-miss per executed batch.
func TestServeSchedulerRaceHammer(t *testing.T) {
	const (
		tasks      = 4
		goroutines = 8
		iters      = 40
	)
	dummy := func(img *tensor.Tensor) []geom.Scored {
		return []geom.Scored{{Class: 1, Score: 0.9}}
	}
	scheduler := sched.New(2500) // fits 2 of the 1000-byte students: eviction churn
	if err := scheduler.Register(sched.Model{Name: "gen", Kind: sched.Generalist, Bytes: 500, Detect: dummy}); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < tasks; i++ {
		err := scheduler.Register(sched.Model{
			Name: fmt.Sprintf("student-%d", i), Kind: sched.TaskSpecific,
			Task: fmt.Sprintf("task-%d", i), Bytes: 1000, Detect: dummy,
		})
		if err != nil {
			t.Fatal(err)
		}
	}

	cfg := Config{Workers: 3, MaxBatch: 4, BatchDelay: 500 * time.Microsecond, QueueCap: 128, LatencyWindow: 1024}
	s, err := New(&schedBackend{s: scheduler}, cfg)
	if err != nil {
		t.Fatal(err)
	}

	img := tensor.New(1)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < iters; i++ {
				task := fmt.Sprintf("task-%d", (g+i)%tasks)
				res, err := s.Detect(context.Background(), Request{Task: task, Image: img})
				switch {
				case err == nil:
					if res.Payload == nil || res.Model == "" {
						t.Errorf("empty result for %s", task)
					}
				case errors.Is(err, ErrQueueFull):
					// acceptable under burst
				default:
					t.Errorf("detect %s: %v", task, err)
				}
				if i%10 == 0 {
					_ = s.Snapshot()
					_ = scheduler.Snapshot()
				}
			}
		}(g)
	}
	// Concurrent late registrations racing the serving path.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 20; i++ {
			name := fmt.Sprintf("late-%d", i)
			if err := scheduler.Register(sched.Model{
				Name: name, Kind: sched.TaskSpecific, Task: name, Bytes: 200, Detect: dummy,
			}); err != nil {
				t.Errorf("late register: %v", err)
			}
		}
	}()
	wg.Wait()

	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	snap := s.Snapshot()
	if got := snap.Completed + snap.Failed + snap.ShedExpired; got != snap.Accepted {
		t.Errorf("unbalanced books: accepted %d, terminal %d (%+v)", snap.Accepted, got, snap)
	}
	if snap.QueueDepth != 0 {
		t.Errorf("queue depth %d after shutdown", snap.QueueDepth)
	}
	st := scheduler.Stats()
	if got, want := uint64(st.Hits+st.Misses), snap.Batches; got != want {
		t.Errorf("scheduler selections %d != executed batches %d (lost CacheStats updates)", got, want)
	}
	if snap.CacheHitRate <= 0 {
		t.Errorf("cache hit rate %f, want > 0", snap.CacheHitRate)
	}
}
