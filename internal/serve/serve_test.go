package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/sched"
	"itask/internal/tensor"
)

// fakeBackend is a controllable backend: routing maps task -> variant, and
// DetectBatch records batch sizes, optionally sleeps, and returns the image
// index as payload.
type fakeBackend struct {
	mu         sync.Mutex
	variants   map[string]string
	batchSizes []int
	delay      time.Duration
	fail       error
	stats      sched.CacheStats
}

func newFakeBackend() *fakeBackend {
	return &fakeBackend{variants: map[string]string{"patrol": "gen", "inspect": "gen", "triage": "triage-student"}}
}

func (f *fakeBackend) Route(task string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.variants[task]
	if !ok {
		return "", fmt.Errorf("fake: unknown task %q", task)
	}
	return v, nil
}

func (f *fakeBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	f.mu.Lock()
	f.batchSizes = append(f.batchSizes, len(imgs))
	delay, fail := f.delay, f.fail
	f.mu.Unlock()
	if delay > 0 {
		time.Sleep(delay)
	}
	if fail != nil {
		return nil, "", fail
	}
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	f.mu.Lock()
	f.stats.Hits++
	f.mu.Unlock()
	return out, "model-for-" + task, nil
}

func (f *fakeBackend) CacheStats() sched.CacheStats {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.stats
}

func (f *fakeBackend) sizes() []int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]int(nil), f.batchSizes...)
}

func testImage() *tensor.Tensor { return tensor.New(3, 4, 4) }

func newTestServer(t *testing.T, b Backend, cfg Config) *Server {
	t.Helper()
	s, err := New(b, cfg)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() {
		ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
		defer cancel()
		_ = s.Shutdown(ctx)
	})
	return s
}

func TestDetectRoundTrip(t *testing.T) {
	fb := newFakeBackend()
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	s := newTestServer(t, fb, cfg)

	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "model-for-patrol" {
		t.Errorf("model = %q", res.Model)
	}
	if res.BatchSize != 1 {
		t.Errorf("batch size = %d, want 1", res.BatchSize)
	}
	if res.Payload.(int) != 0 {
		t.Errorf("payload = %v", res.Payload)
	}
	snap := s.Snapshot()
	if snap.Accepted != 1 || snap.Completed != 1 {
		t.Errorf("snapshot counters: %+v", snap)
	}
	if snap.Cache == nil || snap.CacheHitRate != 1 {
		t.Errorf("cache stats not surfaced: %+v", snap.Cache)
	}
	if snap.LatencyP50US <= 0 {
		t.Errorf("p50 latency not recorded")
	}
}

func TestUnknownTaskRejectedAtAdmission(t *testing.T) {
	s := newTestServer(t, newFakeBackend(), DefaultConfig())
	_, err := s.Detect(context.Background(), Request{Task: "nope", Image: testImage()})
	if err == nil {
		t.Fatal("expected routing error")
	}
	if snap := s.Snapshot(); snap.RejectedRoute != 1 {
		t.Errorf("RejectedRoute = %d, want 1", snap.RejectedRoute)
	}
}

func TestNilImageRejected(t *testing.T) {
	s := newTestServer(t, newFakeBackend(), DefaultConfig())
	if _, err := s.Submit(Request{Task: "patrol"}); err == nil {
		t.Fatal("expected nil-image error")
	}
}

func TestConfigValidation(t *testing.T) {
	fb := newFakeBackend()
	base := DefaultConfig()
	cases := []struct {
		name   string
		mutate func(*Config)
	}{
		{"zero workers", func(c *Config) { c.Workers = 0 }},
		{"negative workers", func(c *Config) { c.Workers = -1 }},
		{"zero max batch", func(c *Config) { c.MaxBatch = 0 }},
		{"queue below batch", func(c *Config) { c.QueueCap = c.MaxBatch - 1 }},
		{"negative delay", func(c *Config) { c.BatchDelay = -time.Millisecond }},
		{"negative timeout", func(c *Config) { c.DefaultTimeout = -time.Second }},
		{"zero latency window", func(c *Config) { c.LatencyWindow = 0 }},
	}
	for _, tc := range cases {
		cfg := base
		tc.mutate(&cfg)
		if _, err := New(fb, cfg); err == nil {
			t.Errorf("%s: New accepted invalid config", tc.name)
		}
	}
	if _, err := New(nil, base); err == nil {
		t.Error("New accepted nil backend")
	}
}

func TestBackendErrorPropagates(t *testing.T) {
	fb := newFakeBackend()
	fb.fail = errors.New("boom")
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	s := newTestServer(t, fb, cfg)
	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err == nil || err.Error() != "boom" {
		t.Fatalf("err = %v, want boom", err)
	}
	if snap := s.Snapshot(); snap.Failed != 1 {
		t.Errorf("Failed = %d, want 1", snap.Failed)
	}
}

// TestCoalescing drives a burst through one slow worker and checks that
// requests actually rode in shared batches.
func TestCoalescing(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 20 * time.Millisecond
	cfg := Config{Workers: 1, MaxBatch: 4, BatchDelay: 5 * time.Millisecond, QueueCap: 64, LatencyWindow: 128}
	s := newTestServer(t, fb, cfg)

	const n = 16
	var wg sync.WaitGroup
	var batched atomic.Int64
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
			if err != nil {
				t.Errorf("detect: %v", err)
				return
			}
			if res.BatchSize > 1 {
				batched.Add(1)
			}
		}()
	}
	wg.Wait()
	if batched.Load() == 0 {
		t.Fatalf("no request rode a coalesced batch; backend batch sizes: %v", fb.sizes())
	}
	for _, sz := range fb.sizes() {
		if sz > cfg.MaxBatch {
			t.Errorf("batch size %d exceeds cap %d", sz, cfg.MaxBatch)
		}
	}
	snap := s.Snapshot()
	if snap.MeanBatch <= 1 {
		t.Errorf("mean batch %.2f, want > 1", snap.MeanBatch)
	}
}

// Requests for different (variant, task) keys must never share a batch.
func TestNoCrossTaskCoalescing(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 10 * time.Millisecond
	cfg := Config{Workers: 1, MaxBatch: 8, BatchDelay: 20 * time.Millisecond, QueueCap: 64, LatencyWindow: 128}
	s := newTestServer(t, fb, cfg)

	var wg sync.WaitGroup
	for i := 0; i < 6; i++ {
		task := "patrol"
		if i%2 == 1 {
			task = "triage"
		}
		wg.Add(1)
		go func(task string) {
			defer wg.Done()
			res, err := s.Detect(context.Background(), Request{Task: task, Image: testImage()})
			if err != nil {
				t.Errorf("detect %s: %v", task, err)
				return
			}
			if want := "model-for-" + task; res.Model != want {
				t.Errorf("task %s served by %s", task, res.Model)
			}
		}(task)
	}
	wg.Wait()
}
