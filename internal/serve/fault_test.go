package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"testing"
	"time"

	"itask/internal/tensor"
)

// poisonMark in a test image's first element makes faultBackend panic when
// the image appears in a batch — a deterministic per-request poison.
const poisonMark = float32(13)

// faultBackend is a controllable faulty backend implementing the full
// optional interface surface: per-image poison panics, per-variant forced
// failure modes, hangs, a fallback variant, and eviction recording.
type faultBackend struct {
	mu        sync.Mutex
	variants  map[string]string // task -> preferred variant
	fallback  string            // "" = no FallbackRouter behaviour
	broken    map[string]string // variant -> "panic" | "error" | "hang"
	hangFor   time.Duration
	execs     map[string]int // per-variant executions
	evicted   []string
	execCount int
}

func newFaultBackend() *faultBackend {
	return &faultBackend{
		variants: map[string]string{"patrol": "student", "inspect": "gen"},
		fallback: "gen",
		broken:   map[string]string{},
		execs:    map[string]int{},
		hangFor:  time.Hour,
	}
}

func (f *faultBackend) Route(task string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	v, ok := f.variants[task]
	if !ok {
		return "", fmt.Errorf("fault: unknown task %q", task)
	}
	return v, nil
}

func (f *faultBackend) RouteFallback(task string) (string, error) {
	f.mu.Lock()
	defer f.mu.Unlock()
	if f.fallback == "" {
		return "", fmt.Errorf("fault: no fallback")
	}
	return f.fallback, nil
}

func (f *faultBackend) EvictVariant(variant string) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.evicted = append(f.evicted, variant)
}

func (f *faultBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	f.mu.Lock()
	f.execs[variant]++
	f.execCount++
	mode := f.broken[variant]
	hang := f.hangFor
	f.mu.Unlock()
	switch mode {
	case "panic":
		panic(fmt.Sprintf("fault: variant %q broken", variant))
	case "error":
		return nil, "", fmt.Errorf("fault: variant %q erroring", variant)
	case "hang":
		time.Sleep(hang)
	}
	for _, img := range imgs {
		if len(img.Data) > 0 && img.Data[0] == poisonMark {
			panic("fault: poison image in batch")
		}
	}
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	return out, "model-" + variant, nil
}

func (f *faultBackend) executions(variant string) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.execs[variant]
}

func (f *faultBackend) evictions() []string {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]string(nil), f.evicted...)
}

func poisonImage() *tensor.Tensor {
	img := tensor.New(3, 4, 4)
	img.Data[0] = poisonMark
	return img
}

// faultConfig is a fault-tolerance-enabled config with breakers off by
// default (individual tests opt in).
func faultConfig() Config {
	return Config{
		Workers: 1, MaxBatch: 8, BatchDelay: time.Hour, QueueCap: 64,
		LatencyWindow: 64, Watchdog: 0, RetryBudget: 3,
	}
}

// A panicking backend must fail only the request, never the server.
func TestPanicIsolatedToRequest(t *testing.T) {
	fb := newFaultBackend()
	cfg := faultConfig()
	cfg.BatchDelay = 0
	s := newTestServer(t, fb, cfg)

	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: poisonImage()})
	if !errors.Is(err, ErrBackendPanic) {
		t.Fatalf("err = %v, want ErrBackendPanic", err)
	}
	var pe *PanicError
	if !errors.As(err, &pe) {
		t.Fatalf("err %T does not unwrap to *PanicError", err)
	}
	if len(pe.Stack) == 0 {
		t.Error("panic stack not captured")
	}
	// The server must still serve.
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err != nil {
		t.Fatalf("server broken after panic: %v", err)
	}
	snap := s.Snapshot()
	if snap.PanicsRecovered == 0 {
		t.Errorf("PanicsRecovered = 0; %+v", snap)
	}
	if snap.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", snap.Quarantined)
	}
}

// One poison request inside a coalesced batch must fail alone: quarantine
// bisection retries the batch-mates, which all succeed.
func TestQuarantineBisectsPoisonOutOfBatch(t *testing.T) {
	fb := newFaultBackend()
	s := newTestServer(t, fb, faultConfig())

	const n = 8 // == MaxBatch: the lane flushes exactly once with all 8
	chans := make([]<-chan Outcome, n)
	poisonAt := 3
	for i := 0; i < n; i++ {
		img := testImage()
		if i == poisonAt {
			img = poisonImage()
		}
		ch, err := s.Submit(Request{Task: "patrol", Image: img})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	for i, ch := range chans {
		out := <-ch
		if i == poisonAt {
			if !errors.Is(out.Err, ErrBackendPanic) {
				t.Errorf("poison request %d: err = %v, want ErrBackendPanic", i, out.Err)
			}
			continue
		}
		if out.Err != nil {
			t.Errorf("healthy request %d failed: %v", i, out.Err)
		}
	}
	snap := s.Snapshot()
	if snap.Quarantined != 1 {
		t.Errorf("Quarantined = %d, want 1", snap.Quarantined)
	}
	if snap.Completed != n-1 {
		t.Errorf("Completed = %d, want %d", snap.Completed, n-1)
	}
	if snap.QuarantineRetry == 0 {
		t.Error("no quarantine retries recorded")
	}
	if snap.VariantEvictions == 0 || len(fb.evictions()) == 0 {
		t.Error("panicking variant was not evicted from the cache")
	}
}

// With RetryBudget 0 quarantine is disabled: a failed batch fails all its
// requests (the pre-fault-tolerance behaviour, minus the crash).
func TestRetryBudgetZeroFailsWholeBatch(t *testing.T) {
	fb := newFaultBackend()
	cfg := faultConfig()
	cfg.RetryBudget = 0
	s := newTestServer(t, fb, cfg)

	chans := make([]<-chan Outcome, 4)
	for i := range chans {
		img := testImage()
		if i == 0 {
			img = poisonImage()
		}
		ch, err := s.Submit(Request{Task: "patrol", Image: img})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}
	// Flush the partially filled lane by shutting down.
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	_ = s.Shutdown(ctx)
	for i, ch := range chans {
		if out := <-ch; !errors.Is(out.Err, ErrBackendPanic) {
			t.Errorf("request %d: err = %v, want ErrBackendPanic (no quarantine)", i, out.Err)
		}
	}
}

// A hung backend execution is abandoned by the watchdog and fails with
// ErrWatchdog instead of wedging the worker forever.
func TestWatchdogAbandonsHungExecution(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "hang"
	fb.hangFor = 200 * time.Millisecond
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.Watchdog = 20 * time.Millisecond
	cfg.RetryBudget = 0
	s := newTestServer(t, fb, cfg)

	start := time.Now()
	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	if waited := time.Since(start); waited > 150*time.Millisecond {
		t.Errorf("watchdog took %v to fire (limit 20ms)", waited)
	}
	snap := s.Snapshot()
	if snap.WatchdogTimeouts == 0 {
		t.Errorf("WatchdogTimeouts = 0; %+v", snap)
	}
	if len(fb.evictions()) == 0 {
		t.Error("hung variant was not evicted")
	}
}

// Consecutive failures trip the lane's breaker; with no fallback the server
// rejects with a BreakerOpenError carrying a Retry-After hint.
func TestBreakerOpensAndRejectsWithoutFallback(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "error"
	fb.fallback = "" // no fallback: open breaker means rejection
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = time.Hour
	s := newTestServer(t, fb, cfg)

	for i := 0; i < 2; i++ {
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err == nil {
			t.Fatalf("request %d should fail", i)
		}
	}
	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if !errors.Is(err, ErrBreakerOpen) {
		t.Fatalf("err = %v, want ErrBreakerOpen", err)
	}
	var bo *BreakerOpenError
	if !errors.As(err, &bo) {
		t.Fatalf("err %T is not *BreakerOpenError", err)
	}
	if bo.RetryAfter <= 0 {
		t.Errorf("RetryAfter = %v, want > 0", bo.RetryAfter)
	}
	snap := s.Snapshot()
	if snap.BreakerOpens != 1 || snap.RejectedBreaker == 0 {
		t.Errorf("breaker counters: opens=%d rejected=%d", snap.BreakerOpens, snap.RejectedBreaker)
	}
	found := false
	for _, lb := range snap.Breakers {
		if lb.Variant == "student" && lb.Task == "patrol" {
			found = true
			if lb.State != "open" {
				t.Errorf("lane state = %q, want open", lb.State)
			}
		}
	}
	if !found {
		t.Errorf("student/patrol lane missing from breaker snapshot: %+v", snap.Breakers)
	}
	// Unrelated lanes stay unaffected.
	if _, err := s.Detect(context.Background(), Request{Task: "inspect", Image: testImage()}); err != nil {
		t.Errorf("healthy lane collateral damage: %v", err)
	}
}

// With a fallback variant, an open breaker degrades traffic to the
// quantized generalist instead of failing it, and the result says so.
func TestBreakerOpenDegradesToFallback(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "panic"
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = time.Hour
	s := newTestServer(t, fb, cfg)

	for i := 0; i < 2; i++ {
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); !errors.Is(err, ErrBackendPanic) {
			t.Fatalf("request %d: err = %v, want ErrBackendPanic", i, err)
		}
	}
	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if res.Model != "model-gen" {
		t.Errorf("degraded request served by %q, want model-gen", res.Model)
	}
	if res.Degraded != DegradedBreakerOpen {
		t.Errorf("Degraded = %q, want %q", res.Degraded, DegradedBreakerOpen)
	}
	snap := s.Snapshot()
	if snap.DegradedRouted == 0 || snap.DegradedServed == 0 {
		t.Errorf("degraded counters: routed=%d served=%d", snap.DegradedRouted, snap.DegradedServed)
	}
}

// After the backoff elapses a half-open probe rides the real lane; when the
// variant has healed, the probe closes the breaker and traffic returns to
// the task-specific configuration.
func TestBreakerHalfOpenProbeHeals(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "error"
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 1
	cfg.BreakerBackoff = 10 * time.Millisecond
	s := newTestServer(t, fb, cfg)

	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err == nil {
		t.Fatal("first request should fail and trip the breaker")
	}
	// Heal the variant, wait out the backoff, and let the probe through.
	fb.mu.Lock()
	delete(fb.broken, "student")
	fb.mu.Unlock()
	time.Sleep(15 * time.Millisecond)

	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatalf("probe request failed: %v", err)
	}
	if res.Model != "model-student" {
		t.Errorf("probe served by %q, want model-student", res.Model)
	}
	res, err = s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil || res.Degraded != "" {
		t.Errorf("post-heal request: err=%v degraded=%q, want healthy primary", err, res.Degraded)
	}
	for _, lb := range s.Snapshot().Breakers {
		if lb.Variant == "student" && lb.State != "closed" {
			t.Errorf("healed lane state = %q, want closed", lb.State)
		}
	}
}

// A latency-SLO breach counts as a breaker failure, so a lane that goes
// slow (not down) still degrades to the fallback.
func TestLatencySLOBreachTripsBreaker(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "hang"
	fb.hangFor = 30 * time.Millisecond // slow, not hung
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 2
	cfg.BreakerBackoff = time.Hour
	cfg.LatencySLO = 5 * time.Millisecond
	s := newTestServer(t, fb, cfg)

	for i := 0; i < 2; i++ {
		// The requests succeed — slowly.
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err != nil {
			t.Fatalf("slow request %d failed: %v", i, err)
		}
	}
	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatalf("degraded request failed: %v", err)
	}
	if res.Degraded != DegradedBreakerOpen || res.Model != "model-gen" {
		t.Errorf("SLO breach did not degrade: model=%q degraded=%q", res.Model, res.Degraded)
	}
	if snap := s.Snapshot(); snap.SLOBreaches < 2 {
		t.Errorf("SLOBreaches = %d, want >= 2", snap.SLOBreaches)
	}
}

// Cancelling Detect's context before the lane flushes must shed the queued
// request instead of executing it for nobody.
func TestDetectCancelShedsQueuedRequest(t *testing.T) {
	fb := newFaultBackend()
	cfg := faultConfig()
	cfg.BatchDelay = time.Hour // nothing flushes until shutdown
	s, err := New(fb, cfg)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Detect(ctx, Request{Task: "patrol", Image: testImage()})
		done <- err
	}()
	// Wait until the request is queued, then cancel.
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Detect err = %v, want context.Canceled", err)
	}

	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if got := fb.executions("student"); got != 0 {
		t.Errorf("cancelled request executed anyway (%d executions)", got)
	}
	snap := s.Snapshot()
	if snap.ShedCancelled != 1 {
		t.Errorf("ShedCancelled = %d, want 1", snap.ShedCancelled)
	}
	if got := snap.Completed + snap.Failed + snap.ShedExpired + snap.ShedCancelled; got != snap.Accepted {
		t.Errorf("books unbalanced with cancellation: accepted %d, terminal %d", snap.Accepted, got)
	}
}

// badShapeBackend validates images, mimicking the pipeline backend.
type badShapeBackend struct{ faultBackend }

func (b *badShapeBackend) ValidateImage(img *tensor.Tensor) error {
	if len(img.Shape) != 3 || img.Shape[0] != 3 {
		return fmt.Errorf("image shape %v, want (3,H,W)", img.Shape)
	}
	return nil
}

// Malformed input is refused at admission with ErrBadShape, before it can
// reach a kernel inside a shared batch.
func TestBadShapeRejectedAtAdmission(t *testing.T) {
	fb := &badShapeBackend{*newFaultBackend()}
	cfg := faultConfig()
	cfg.BatchDelay = 0
	s := newTestServer(t, fb, cfg)

	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: tensor.New(7)})
	if !errors.Is(err, ErrBadShape) {
		t.Fatalf("err = %v, want ErrBadShape", err)
	}
	if got := fb.executions("student"); got != 0 {
		t.Errorf("malformed request reached the backend (%d executions)", got)
	}
	if snap := s.Snapshot(); snap.RejectedShape != 1 {
		t.Errorf("RejectedShape = %d, want 1", snap.RejectedShape)
	}
	// A well-formed request still goes through.
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err != nil {
		t.Fatalf("valid request failed: %v", err)
	}
}

// A probe slot claimed at admission must also be released when the probing
// request is shed at execution time (cancelled or deadline-expired before
// invoke). Leaking it would pin the lane half-open with probing set: every
// future admit would deny, no execution could ever record an outcome, and
// the lane could never heal.
func TestProbeSlotReleasedWhenProbeShed(t *testing.T) {
	fb := newFaultBackend()
	cfg := faultConfig() // BatchDelay: 1h — nothing flushes until shutdown
	cfg.BreakerThreshold = 1
	cfg.BreakerBackoff = time.Millisecond
	s, err := New(fb, cfg)
	if err != nil {
		t.Fatal(err)
	}
	key := laneKey("student", "patrol")

	// Trip the breaker directly, then let the backoff elapse so the next
	// admission claims the half-open probe slot.
	if opened := s.h.record(key, false, time.Now()); !opened {
		t.Fatal("breaker did not open")
	}
	time.Sleep(5 * time.Millisecond)

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		_, err := s.Detect(ctx, Request{Task: "patrol", Image: testImage()})
		done <- err
	}()
	deadline := time.Now().Add(5 * time.Second)
	for s.Snapshot().Accepted == 0 {
		if time.Now().After(deadline) {
			t.Fatal("probe request never admitted")
		}
		time.Sleep(time.Millisecond)
	}
	s.h.mu.Lock()
	claimed := s.h.lanes[key].probing
	s.h.mu.Unlock()
	if !claimed {
		t.Fatal("queued request did not claim the probe slot")
	}

	// Cancel the probe request while it is still queued, then flush the
	// lane: execute must shed it and return the probe slot.
	cancel()
	if err := <-done; !errors.Is(err, context.Canceled) {
		t.Fatalf("Detect err = %v, want context.Canceled", err)
	}
	sctx, scancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer scancel()
	if err := s.Shutdown(sctx); err != nil {
		t.Fatal(err)
	}
	if got := fb.executions("student"); got != 0 {
		t.Errorf("shed probe executed anyway (%d executions)", got)
	}
	if dec := s.h.admit(key, time.Now()); dec != admitProbe {
		t.Errorf("post-shed admit = %v, want admitProbe (slot released, lane can heal)", dec)
	}
}

// ctxBackend blocks every execution until its context is cancelled — a
// cooperative backend the watchdog can actually stop via ContextBackend.
type ctxBackend struct {
	faultBackend
	stopped chan struct{}
}

func (c *ctxBackend) DetectBatchContext(ctx context.Context, variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	<-ctx.Done()
	c.stopped <- struct{}{}
	return nil, "", ctx.Err()
}

// When the backend implements ContextBackend, a watchdog-abandoned
// execution is cancelled instead of left running, and its abandoned-count
// is reaped once the goroutine exits.
func TestWatchdogCancelsContextBackend(t *testing.T) {
	cb := &ctxBackend{faultBackend: *newFaultBackend(), stopped: make(chan struct{}, 1)}
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.Watchdog = 10 * time.Millisecond
	s := newTestServer(t, cb, cfg)

	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("err = %v, want ErrWatchdog", err)
	}
	select {
	case <-cb.stopped:
	case <-time.After(5 * time.Second):
		t.Fatal("abandoned execution never saw its context cancelled")
	}
	deadline := time.Now().Add(5 * time.Second)
	for s.abandonedOn("student") != 0 {
		if time.Now().After(deadline) {
			t.Fatal("abandoned count never reaped after the goroutine exited")
		}
		time.Sleep(time.Millisecond)
	}
}

// A variant whose executions hang uncancellably must not accumulate
// abandoned goroutines without bound: at maxAbandonedPerVariant the server
// fails new batches fast with ErrWatchdog instead of starting another.
func TestAbandonedExecutionsCappedPerVariant(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "hang"
	fb.hangFor = time.Hour // plain DetectBatch: cancellation cannot reach it
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.Watchdog = 10 * time.Millisecond
	s := newTestServer(t, fb, cfg)

	for i := 0; i < maxAbandonedPerVariant; i++ {
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); !errors.Is(err, ErrWatchdog) {
			t.Fatalf("request %d: err = %v, want ErrWatchdog", i, err)
		}
	}
	if got := fb.executions("student"); got != maxAbandonedPerVariant {
		t.Fatalf("executions = %d, want %d", got, maxAbandonedPerVariant)
	}
	// At the cap: fail fast, no new execution, still ErrWatchdog for the
	// breaker's accounting.
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); !errors.Is(err, ErrWatchdog) {
		t.Fatalf("capped request: err = %v, want ErrWatchdog", err)
	}
	if got := fb.executions("student"); got != maxAbandonedPerVariant {
		t.Errorf("executions grew to %d past the abandoned cap %d", got, maxAbandonedPerVariant)
	}
	// The healthy lane is unaffected by the hung variant's cap.
	if _, err := s.Detect(context.Background(), Request{Task: "inspect", Image: testImage()}); err != nil {
		t.Errorf("healthy lane collateral damage: %v", err)
	}
}

// A probe slot claimed at admission must be released when the request then
// fails to enqueue, or the lane would be stuck half-open with no probe.
func TestProbeSlotReleasedOnEnqueueFailure(t *testing.T) {
	fb := newFaultBackend()
	fb.broken["student"] = "error"
	fb.fallback = ""
	cfg := faultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 1
	cfg.BreakerBackoff = time.Millisecond
	s, err := New(fb, cfg)
	if err != nil {
		t.Fatal(err)
	}

	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err == nil {
		t.Fatal("first request should trip the breaker")
	}
	time.Sleep(5 * time.Millisecond) // backoff elapses: next admit claims the probe
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatal(err)
	}
	// This submission claims the probe slot, then fails with
	// ErrShuttingDown; the slot must be released.
	if _, err := s.Submit(Request{Task: "patrol", Image: testImage()}); !errors.Is(err, ErrShuttingDown) {
		t.Fatalf("err = %v, want ErrShuttingDown", err)
	}
	s.h.mu.Lock()
	br := s.h.lanes[laneKey("student", "patrol")]
	probing := br != nil && br.probing
	s.h.mu.Unlock()
	if probing {
		t.Error("probe slot leaked after enqueue failure")
	}
}
