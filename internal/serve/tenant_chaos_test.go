package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/tensor"
)

// chaosBackend sleeps per batch (so latency is execution-shaped, not
// instant) and panics whenever a poison-marked image rides in the batch.
type chaosBackend struct {
	mu       sync.Mutex
	variants map[string]string
	delay    time.Duration
}

func (c *chaosBackend) Route(task string) (string, error) {
	c.mu.Lock()
	defer c.mu.Unlock()
	v, ok := c.variants[task]
	if !ok {
		return "", fmt.Errorf("chaos: unknown task %q", task)
	}
	return v, nil
}

func (c *chaosBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	time.Sleep(c.delay)
	for _, img := range imgs {
		if len(img.Data) > 0 && img.Data[0] == poisonMark {
			panic("chaos: poison image")
		}
	}
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	return out, "model-" + variant, nil
}

// The ISSUE's chaos acceptance scenario: tenant A sends 10% poison-pill
// content at 3x tenant B's rate while B runs a steady workload on its own
// task. B must observe zero failures and a p99 no worse than 1.5x its solo
// baseline (plus a small absolute noise floor for CI schedulers).
func TestTenantChaosIsolation(t *testing.T) {
	if testing.Short() {
		t.Skip("multi-second chaos run")
	}
	cb := &chaosBackend{
		variants: map[string]string{"patrol": "gen", "triage": "triage-student"},
		delay:    time.Millisecond,
	}
	cfg := Config{
		Workers: 4, MaxBatch: 4, BatchDelay: 2 * time.Millisecond,
		QueueCap: 64, LatencyWindow: 256, RetryBudget: 3,
		TenantWeights: map[string]int{"a": 1, "b": 1},
	}
	s := newTestServer(t, cb, cfg)

	const (
		// Long enough phases that B's p99 rides on ~400 samples: a 1%
		// tail then tolerates the handful of multi-slice scheduler stalls
		// an oversubscribed single-core CI runner injects at random —
		// with 2 minutes of samples those stalls land in both phases and
		// cancel; with 200 they land in one and decide the verdict.
		phase  = 2500 * time.Millisecond
		bPace  = 6 * time.Millisecond
		aProcs = 3 // 3 submitters at B's pace = 3x B's rate
	)

	// runB paces tenant B's steady workload and returns its latencies;
	// every B error is a test failure (the zero-failure criterion).
	runB := func(label string) []time.Duration {
		var lats []time.Duration
		runtime.GC() // don't bill earlier tests' garbage to this phase
		deadline := time.Now().Add(phase)
		for time.Now().Before(deadline) {
			start := time.Now()
			res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage(), Tenant: "b"})
			if err != nil {
				t.Fatalf("%s: tenant b request failed: %v", label, err)
			}
			if res.Tenant != "b" {
				t.Fatalf("%s: tenant b result attributed to %q", label, res.Tenant)
			}
			lats = append(lats, time.Since(start))
			time.Sleep(bPace)
		}
		return lats
	}
	p99 := func(lats []time.Duration) time.Duration {
		sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
		return lats[int(float64(len(lats))*0.99)]
	}

	// Phase 1: B alone, to establish the solo baseline.
	solo := runB("solo")
	soloP99 := p99(solo)

	// Phase 2: A floods its own task at 3x B's rate with every 10th image
	// a poison pill, while B repeats the same steady workload.
	var stop atomic.Bool
	var aOK, aFail atomic.Int64
	var wg sync.WaitGroup
	for g := 0; g < aProcs; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; !stop.Load(); i++ {
				img := testImage()
				if i%10 == 0 {
					img.Data[0] = poisonMark
				}
				_, err := s.Detect(context.Background(), Request{Task: "triage", Image: img, Tenant: "a"})
				if err == nil {
					aOK.Add(1)
				} else if errors.Is(err, ErrBackendPanic) || errors.Is(err, ErrQueueFull) {
					aFail.Add(1)
				} else {
					t.Errorf("tenant a unexpected error: %v", err)
					return
				}
				time.Sleep(bPace)
			}
		}()
	}
	chaos := runB("chaos")
	stop.Store(true)
	wg.Wait()
	chaosP99 := p99(chaos)

	if len(solo) < 50 || len(chaos) < 50 {
		t.Fatalf("too few B samples to judge p99: solo=%d chaos=%d", len(solo), len(chaos))
	}
	if aFail.Load() == 0 {
		t.Errorf("tenant a saw no failures; poison never fired (ok=%d)", aOK.Load())
	}
	if aOK.Load() < int64(2*len(chaos)) {
		t.Errorf("tenant a completed %d vs b %d; chaos load was not ~3x", aOK.Load(), len(chaos))
	}
	// 5ms absolute slack absorbs scheduler noise on loaded CI runners
	// (one-core boxes hand out 10ms preemption slices, so a wake-up can
	// eat a slice through no fault of the scheduler under test); the
	// ratio criterion is the ISSUE's 1.5x.
	limit := soloP99 + soloP99/2 + 5*time.Millisecond
	if chaosP99 > limit {
		t.Errorf("tenant b chaos p99 %v exceeds 1.5x solo baseline %v (limit %v)", chaosP99, soloP99, limit)
	}

	snap := s.Snapshot()
	for _, ts := range snap.PerTenant {
		if ts.Tenant == "b" && ts.Failed != 0 {
			t.Errorf("tenant b Failed = %d, want 0", ts.Failed)
		}
		if ts.Tenant == "a" && ts.Failed == 0 {
			t.Errorf("tenant a Failed = 0, want poison failures recorded")
		}
	}
}
