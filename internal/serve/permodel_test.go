package serve

import (
	"context"
	"sync"
	"testing"

	"itask/internal/registry"
	"itask/internal/tensor"
)

// sinkBackend wraps fakeBackend with VariantHealthSink + RegistryStatser,
// recording verdicts.
type sinkBackend struct {
	*fakeBackend
	mu       sync.Mutex
	verdicts []string // "variant|reason"
	regStats registry.Stats
}

func (b *sinkBackend) VariantUnhealthy(variant, task, reason string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.verdicts = append(b.verdicts, variant+"|"+reason)
}

func (b *sinkBackend) RegistryStats() registry.Stats {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.regStats
}

func (b *sinkBackend) seen() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.verdicts...)
}

// Completed requests are attributed to the model string the backend
// returned; registry stats surface in the snapshot.
func TestPerModelAttributionAndRegistryStats(t *testing.T) {
	fb := &sinkBackend{fakeBackend: newFakeBackend(), regStats: registry.Stats{Publishes: 3, Rollbacks: 1}}
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	s := newTestServer(t, fb, cfg)

	for i := 0; i < 3; i++ {
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := s.Detect(context.Background(), Request{Task: "triage", Image: testImage()}); err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if snap.Registry == nil || snap.Registry.Publishes != 3 || snap.Registry.Rollbacks != 1 {
		t.Errorf("registry stats not surfaced: %+v", snap.Registry)
	}
	byModel := map[string]ModelStats{}
	for _, ms := range snap.PerModel {
		byModel[ms.Model] = ms
	}
	if got := byModel["model-for-patrol"]; got.Completed != 3 || got.MeanLatencyUS <= 0 {
		t.Errorf("patrol model stats = %+v, want 3 completed with latency", got)
	}
	if got := byModel["model-for-triage"]; got.Completed != 1 {
		t.Errorf("triage model stats = %+v, want 1 completed", got)
	}
}

// A panicking variant produces a health verdict (panic now, breaker-open
// once the lane trips) attributed to the exact variant, and per-model fault
// counters record the panics and terminal failures.
func TestPanicReportsVariantUnhealthy(t *testing.T) {
	fb := &sinkBackend{fakeBackend: newFakeBackend()}
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 2
	s := newTestServer(t, &panicOnVariant{sinkBackend: fb, variant: "triage-student"}, cfg)

	for i := 0; i < 2; i++ {
		if _, err := s.Detect(context.Background(), Request{Task: "triage", Image: testImage()}); err == nil {
			t.Fatal("expected panic-induced failure")
		}
	}
	var panicVerdicts, breakerVerdicts int
	for _, v := range fb.seen() {
		switch v {
		case "triage-student|" + UnhealthyPanic:
			panicVerdicts++
		case "triage-student|" + UnhealthyBreaker:
			breakerVerdicts++
		}
	}
	if panicVerdicts != 2 || breakerVerdicts != 1 {
		t.Errorf("verdicts = %v, want 2 panic + 1 breaker for triage-student", fb.seen())
	}
	snap := s.Snapshot()
	var ms ModelStats
	for _, m := range snap.PerModel {
		if m.Model == "triage-student" {
			ms = m
		}
	}
	if ms.Panics != 2 || ms.Failed != 2 {
		t.Errorf("per-model stats = %+v, want 2 panics and 2 failed", ms)
	}
}

// panicOnVariant panics whenever the named variant executes.
type panicOnVariant struct {
	*sinkBackend
	variant string
}

func (b *panicOnVariant) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	if variant == b.variant {
		panic("poisoned weights")
	}
	return b.sinkBackend.DetectBatch(variant, task, imgs)
}
