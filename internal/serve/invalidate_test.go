package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"itask/internal/tensor"
)

// poisonBackend panics on images whose first pixel carries the poison
// marker, executes everything else, and counts executions. It models a
// value-dependent kernel bug, like the chaos injector but local to this
// package.
type poisonBackend struct {
	mu    sync.Mutex
	execs int
}

const poisonPixel = 666

func (b *poisonBackend) Route(string) (string, error) { return "m@v1#aa", nil }
func (b *poisonBackend) RouteEpoch() uint64           { return 1 }

func (b *poisonBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	b.mu.Lock()
	b.execs++
	b.mu.Unlock()
	out := make([]any, len(imgs))
	for i, img := range imgs {
		if img.Data[0] == poisonPixel {
			panic("poison pixel")
		}
		out[i] = i
	}
	return out, variant, nil
}

func (b *poisonBackend) executions() int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.execs
}

// A request whose content was quarantined in isolation is refused from the
// negative cache with ErrQuarantined — no queue, no kernel, no re-panic —
// until the negative TTL lapses, after which it re-executes (and is
// re-quarantined).
func TestNegativeCacheBlocksPoisonReexecution(t *testing.T) {
	b := &poisonBackend{}
	cfg := cacheConfig()
	cfg.NegativeTTL = 200 * time.Millisecond
	cfg.RetryBudget = 3
	cfg.BreakerThreshold = 0 // isolate the negative-cache behaviour
	s := newTestServer(t, b, cfg)

	poison := testImage()
	poison.Data[0] = poisonPixel

	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: poison})
	if !errors.Is(err, ErrBackendPanic) {
		t.Fatalf("first poison request: err = %v, want ErrBackendPanic", err)
	}
	execsAfterFirst := b.executions()

	for i := 0; i < 5; i++ {
		_, err = s.Detect(context.Background(), Request{Task: "patrol", Image: poison})
		if !errors.Is(err, ErrQuarantined) {
			t.Fatalf("repeat %d: err = %v, want ErrQuarantined", i, err)
		}
	}
	if got := b.executions(); got != execsAfterFirst {
		t.Fatalf("quarantined content re-executed: %d -> %d executions", execsAfterFirst, got)
	}
	snap := s.Snapshot()
	if snap.QuarantineBlocked != 5 {
		t.Fatalf("QuarantineBlocked = %d, want 5", snap.QuarantineBlocked)
	}

	// Healthy content is untouched by the negative entry.
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()}); err != nil {
		t.Fatalf("healthy request failed alongside quarantine: %v", err)
	}

	// After the TTL the content gets another chance — and fails afresh on
	// the backend, proving it re-executed.
	time.Sleep(250 * time.Millisecond)
	_, err = s.Detect(context.Background(), Request{Task: "patrol", Image: poison})
	if !errors.Is(err, ErrBackendPanic) {
		t.Fatalf("post-TTL poison request: err = %v, want ErrBackendPanic (re-execution)", err)
	}
	if got := b.executions(); got <= execsAfterFirst {
		t.Fatal("post-TTL poison request did not reach the backend")
	}
}

// demoteBackend wraps versionedBackend with a VariantHealthSink that swaps
// routing to the fallback version, modeling the registry demote + rollback
// the pipeline backend performs.
type demoteBackend struct {
	*versionedBackend
	mu        sync.Mutex
	demotions []string
	restore   string
}

func (b *demoteBackend) VariantUnhealthy(variant, task, reason string) {
	b.mu.Lock()
	b.demotions = append(b.demotions, variant)
	b.mu.Unlock()
	b.swap(b.restore)
}

func (b *demoteBackend) demoted() []string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return append([]string(nil), b.demotions...)
}

// A demoted version's result-cache entries are swept immediately: after the
// health verdict fires, the cache holds nothing pinned to the demoted ID and
// its bytes are back in the budget, while the restored version's entries
// survive.
func TestArtifactSweepOnDemote(t *testing.T) {
	b := &demoteBackend{versionedBackend: newVersionedBackend("m@v2#bb"), restore: "m@v1#aa"}
	cfg := cacheConfig()
	cfg.BreakerThreshold = 1
	cfg.BreakerBackoff = time.Hour // keep the lane open; we only need the verdict
	s := newTestServer(t, b, cfg)

	// Warm the cache with v2 results under distinct digests.
	imgs := make([]*tensor.Tensor, 6)
	for i := range imgs {
		imgs[i] = testImage()
		imgs[i].Data[0] = float32(i + 1)
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: imgs[i]}); err != nil {
			t.Fatal(err)
		}
	}
	if got := s.cache.Stats().Entries; got != len(imgs) {
		t.Fatalf("warmup entries = %d, want %d", got, len(imgs))
	}

	// One failure trips the breaker (threshold 1) -> health verdict ->
	// demote + sweep.
	b.versionedBackend.mu.Lock()
	b.versionedBackend.failOnce = true
	b.versionedBackend.mu.Unlock()
	fresh := testImage()
	fresh.Data[0] = 99
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: fresh}); err == nil {
		t.Fatal("forced failure did not fail")
	}
	if d := b.demoted(); len(d) != 1 || d[0] != "m@v2#bb" {
		t.Fatalf("demotions = %v, want [m@v2#bb]", d)
	}
	st := s.cache.Stats()
	if st.Entries != 0 {
		t.Fatalf("entries pinned to demoted version survived: %d resident", st.Entries)
	}
	if st.Bytes != 0 {
		t.Fatalf("demoted version's bytes not reclaimed: %d", st.Bytes)
	}
	if snap := s.Snapshot(); snap.ArtifactSweeps != uint64(len(imgs)) {
		t.Fatalf("ArtifactSweeps = %d, want %d", snap.ArtifactSweeps, len(imgs))
	}

	// The restored version serves and refills the cache under its own ID.
	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: imgs[0]})
	if err != nil {
		t.Fatal(err)
	}
	if res.Model != "m@v1#aa" || res.Cached {
		t.Fatalf("post-demote result = {model %s cached %v}, want fresh m@v1#aa", res.Model, res.Cached)
	}
}
