package serve

import (
	"context"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/chaos"
	"itask/internal/tensor"
)

// benchBackend models the simulated accelerator: a batch costs a fixed
// dispatch latency plus a per-image term (the weight-stationary
// amortization batching buys), spent off-CPU like hwsim device time. The
// per-image cost is ~10x below the real quantized pipeline's ~520µs/image
// (BENCH_kernels.json), biasing the measurement toward serve-layer
// overhead rather than flattering the cache.
type benchBackend struct{}

func (benchBackend) Route(string) (string, error) { return "m@v1#aa", nil }
func (benchBackend) RouteEpoch() uint64           { return 1 }
func (benchBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	time.Sleep(20*time.Microsecond + 50*time.Microsecond*time.Duration(len(imgs)))
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	return out, variant, nil
}

func benchConfig(cache, hot bool) Config {
	cfg := Config{
		Workers:       4,
		MaxBatch:      8,
		BatchDelay:    0,
		QueueCap:      4096,
		LatencyWindow: 4096,
	}
	if cache {
		cfg.CacheBytes = 64 << 20
		cfg.Coalesce = true
	}
	if hot {
		cfg.HotThreshold = 8
	}
	return cfg
}

// benchImage builds one 3xNxN image whose content is a function of seed.
func benchImage(seed uint64, dim int) *tensor.Tensor {
	img := tensor.New(3, dim, dim)
	for i := range img.Data {
		img.Data[i] = float32(seed) + float32(i)*0.25
	}
	return img
}

// BenchmarkServeHotPath measures end-to-end request throughput under
// parallel clients (run with -cpu 1,4,8). Workloads:
//
//	dup50:   every other request repeats one of 8 hot frames — the
//	         consecutive-frame redundancy the result cache exists for.
//	uniq100: every request carries never-seen content — the cache can only
//	         add overhead; guards the no-regression bound.
//	zipf11:  ranks drawn zipf(1.1) over a 512-frame universe — the skewed
//	         viral-traffic shape; a few frames dominate but the tail is live,
//	         stressing one cache shard and one coalescing entry at once.
//	hot1:    every request reads one single viral frame — the worst-case
//	         convoy on one cache shard's mutex and one cache line. The
//	         replicated variant serves it from the lock-free hot replica
//	         table; sharded keeps the replica tier off for comparison.
//	zipf13:  ranks drawn zipf(1.3) — steeper than zipf11, so the head is
//	         viral enough for the hot detector to promote it while the tail
//	         still churns the sharded cache underneath.
//
// The hot1/zipf13 pairs isolate the replica tier against the sharded cache,
// so they use 3x4x4 thumbnail frames: content digesting is a latency-bound
// FNV chain both variants pay identically, and at full frame size it drowns
// the serving-path difference under measurement. The other workloads keep
// full 3x16x16 frames.
//
// Each goroutine mutates a private scratch image to synthesize unique
// content without per-op allocation.
func BenchmarkServeHotPath(b *testing.B) {
	for _, tc := range []struct {
		name   string
		dupMod uint64  // every dupMod-th request is a hot duplicate (0 = never)
		single bool    // every request reads the one hot frame
		zipf   bool    // draw from the zipf universe instead of dup/uniq
		zipfS  float64 // zipf exponent (0 = 1.1)
		cache  bool
		hot    bool // enable the hot replica tier
	}{
		{name: "dup50/cache", dupMod: 2, cache: true},
		{name: "dup50/nocache", dupMod: 2},
		{name: "uniq100/cache", cache: true},
		{name: "uniq100/nocache"},
		{name: "zipf11/cache", zipf: true, cache: true},
		{name: "zipf11/nocache", zipf: true},
		{name: "hot1/replicated", single: true, cache: true, hot: true},
		{name: "hot1/sharded", single: true, cache: true},
		{name: "zipf13/replicated", zipf: true, zipfS: 1.3, cache: true, hot: true},
		{name: "zipf13/sharded", zipf: true, zipfS: 1.3, cache: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			s, err := New(benchBackend{}, benchConfig(tc.cache, tc.hot))
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = s.Shutdown(ctx)
			}()
			dim := 16
			if tc.single || tc.zipfS != 0 {
				dim = 4 // thumbnail frames; see the workload table above
			}
			hot := make([]*tensor.Tensor, 8)
			for i := range hot {
				hot[i] = benchImage(uint64(i), dim)
			}
			var universe []*tensor.Tensor
			if tc.zipf {
				universe = chaos.ZipfImages(512, 3, dim, dim)
			}
			// Warm the cache with the hot set so dup50 measures steady state.
			for _, img := range hot {
				if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img}); err != nil {
					b.Fatal(err)
				}
			}
			if tc.hot {
				// Cross the promotion threshold before timing so the
				// replicated variants measure steady-state replica reads,
				// not the detector ramp.
				warm := func(img *tensor.Tensor) {
					for i := 0; i < 16; i++ {
						if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img}); err != nil {
							b.Fatal(err)
						}
					}
				}
				warm(hot[0])
				if tc.zipf {
					ws := chaos.NewZipfStream(0, tc.zipfS, len(universe))
					for i := 0; i < 4096; i++ {
						if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: universe[ws.Next()]}); err != nil {
							b.Fatal(err)
						}
					}
				}
			}
			var gid atomic.Uint64
			b.SetParallelism(4) // 4 client goroutines per GOMAXPROCS
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				g := gid.Add(1)
				scratch := benchImage(1_000_000*g, dim)
				var zs *chaos.ZipfStream
				if tc.zipf {
					s := tc.zipfS
					if s == 0 {
						s = 1.1
					}
					zs = chaos.NewZipfStream(g, s, len(universe))
				}
				ctx := context.Background()
				var n uint64
				for pb.Next() {
					n++
					img := scratch
					switch {
					case tc.single:
						img = hot[0]
					case tc.zipf:
						img = universe[zs.Next()]
					case tc.dupMod != 0 && n%tc.dupMod == 0:
						img = hot[n%uint64(len(hot))]
					default:
						// Unique content: perturb two pixels so the digest
						// never repeats, without allocating.
						scratch.Data[0] = float32(g) + float32(n)*0.5
						scratch.Data[1] = float32(n % 251)
					}
					if _, err := s.Detect(ctx, Request{Task: "patrol", Image: img}); err != nil {
						b.Fatal(err)
					}
				}
			})
		})
	}
}

// legacyServeMetrics is a faithful miniature of the pre-sharding metrics
// design — one global mutex guarding counters and the latency ring — kept
// for before/after comparison benches against the sharded implementation.
type legacyServeMetrics struct {
	mu        sync.Mutex
	accepted  uint64
	completed uint64
	window    []float64
	next      int
}

func (m *legacyServeMetrics) observe(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	m.mu.Lock()
	m.accepted++
	m.completed++
	if len(m.window) < cap(m.window) {
		m.window = append(m.window, us)
	} else {
		m.window[m.next] = us
		m.next = (m.next + 1) % len(m.window)
	}
	m.mu.Unlock()
}

// BenchmarkMetricsLegacy vs BenchmarkMetricsSharded isolate the
// contention cost of the old single-mutex metrics against the sharded
// atomic design under parallel writers (run with -cpu 1,4,8).
func BenchmarkMetricsLegacy(b *testing.B) {
	m := &legacyServeMetrics{window: make([]float64, 0, 4096)}
	b.RunParallel(func(pb *testing.PB) {
		var n uint64
		for pb.Next() {
			n++
			m.observe(time.Duration(n))
		}
	})
}

func BenchmarkMetricsSharded(b *testing.B) {
	m := newMetrics(8, 4096)
	b.RunParallel(func(pb *testing.PB) {
		var n uint64
		for pb.Next() {
			n++
			m.inc(n, cAccepted)
			m.inc(n, cCompleted)
			m.observeLatency(n, time.Duration(n))
		}
	})
}
