package serve

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"
)

// hotConfig enables the result cache's hot replica tier with a promotion
// threshold low enough for tests to trip quickly.
func hotServeConfig() Config {
	cfg := cacheConfig()
	cfg.Coalesce = true
	cfg.HotThreshold = 2
	cfg.HotBytes = 1 << 16
	return cfg
}

// retireBackend is a versionedBackend that also implements
// RetirementNotifier with the registry's ordering contract: on a swap, the
// hooks fire with the outgoing version's ID before the new variant/epoch
// become observable.
type retireBackend struct {
	versionedBackend
	hooks []func(string)
}

func newRetireBackend(variant string) *retireBackend {
	b := &retireBackend{}
	b.variant = variant
	b.execs = map[string]int{}
	b.epoch = 1
	return b
}

func (b *retireBackend) OnRetire(fn func(artifact string)) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.hooks = append(b.hooks, fn)
}

// swapRetire publishes a new version: the old one is retired (hooks run)
// before any Route or RouteEpoch can observe the new state.
func (b *retireBackend) swapRetire(variant string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	for _, fn := range b.hooks {
		fn(b.variant)
	}
	b.variant = variant
	b.epoch++
}

func (b *retireBackend) current() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.variant
}

// versionOf extracts N from "m@vN#aa".
func versionOf(t *testing.T, model string) int {
	t.Helper()
	rest, ok := strings.CutPrefix(model, "m@v")
	if !ok {
		t.Fatalf("unexpected model %q", model)
	}
	num, _, _ := strings.Cut(rest, "#")
	v, err := strconv.Atoi(num)
	if err != nil {
		t.Fatalf("unexpected model %q", model)
	}
	return v
}

// TestHotReplicaNeverServesRetiredVersion hammers one viral digest with
// concurrent readers while a churner publishes new versions, each publish
// retiring the previous version's hot replicas before the new routing view
// serves (the registry swap contract). Every response must come from a
// version at least as new as the one active when the request started — a
// promoted replica must never serve a retired version — and after the churn
// the replica books must balance: no leaked replica entries or bytes. Run
// with -race.
func TestHotReplicaNeverServesRetiredVersion(t *testing.T) {
	b := newRetireBackend("m@v1#aa")
	s := newTestServer(t, b, hotServeConfig())
	img := testImage()
	ctx := context.Background()

	var wg sync.WaitGroup
	stop := make(chan struct{})
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				floor := versionOf(t, b.current())
				res, err := s.Detect(ctx, Request{Task: "patrol", Image: img})
				if err != nil {
					t.Errorf("detect: %v", err)
					return
				}
				if got := versionOf(t, res.Model); got < floor {
					t.Errorf("served retired version v%d (v%d was already active)", got, floor)
					return
				}
			}
		}()
	}
	for v := 2; v <= 30; v++ {
		time.Sleep(2 * time.Millisecond)
		b.swapRetire(fmt.Sprintf("m@v%d#aa", v))
	}
	close(stop)
	wg.Wait()

	// Only the final version may still hold replicas; one more publish
	// retires it and the books must read empty — promotion/demotion churn
	// must not leak replica entries or bytes.
	st := s.Snapshot().ResultCache
	if st.HotEntries > 1 {
		t.Fatalf("retired versions leaked replicas: %d entries, %d bytes", st.HotEntries, st.HotBytes)
	}
	b.swapRetire("m@v31#aa")
	st = s.Snapshot().ResultCache
	if st.HotEntries != 0 || st.HotBytes != 0 {
		t.Fatalf("replica books don't balance: %d entries, %d bytes", st.HotEntries, st.HotBytes)
	}
	if st.HotDemotions > st.HotPromotions {
		t.Fatalf("demotions %d > promotions %d", st.HotDemotions, st.HotPromotions)
	}
	if st.Hits < st.HotHits {
		t.Fatalf("Hits %d excludes HotHits %d", st.Hits, st.HotHits)
	}
}

// An upstream hot hint (Request.Hot, the gateway's X-Itask-Hot) pre-promotes
// the digest: the fill after the first request lands straight in the replica
// table, without threshold-many local arrivals.
func TestHotRequestHintPrePromotes(t *testing.T) {
	b := newRetireBackend("m@v1#aa")
	cfg := hotServeConfig()
	cfg.HotThreshold = 1 << 20 // the local detector alone would never trip
	s := newTestServer(t, b, cfg)
	img := testImage()
	ctx := context.Background()

	if _, err := s.Detect(ctx, Request{Task: "patrol", Image: img, Hot: true}); err != nil {
		t.Fatal(err)
	}
	st := s.Snapshot().ResultCache
	if st.HotPromotions != 1 || st.HotEntries != 1 {
		t.Fatalf("hinted fill not promoted: promotions=%d entries=%d", st.HotPromotions, st.HotEntries)
	}
	res, err := s.Detect(ctx, Request{Task: "patrol", Image: img})
	if err != nil || !res.Cached {
		t.Fatalf("repeat = (%+v, %v), want replicated cache hit", res, err)
	}
	snap := s.Snapshot()
	if snap.ResultCache.HotHits == 0 || snap.ReplicatedHitRate <= 0 {
		t.Fatalf("replicated hit not accounted: hot_hits=%d rate=%g",
			snap.ResultCache.HotHits, snap.ReplicatedHitRate)
	}
}

// The replicated hit path — the lock-free table probe inside Detect — stays
// allocation-free, like the sharded cached path it bypasses.
func TestDetectReplicatedHitZeroAllocs(t *testing.T) {
	b := newRetireBackend("m@v1#aa")
	s := newTestServer(t, b, hotServeConfig())
	img := testImage()
	req := Request{Task: "patrol", Image: img}
	ctx := context.Background()

	// Prime: execute once, then trip the threshold (2 reads) to promote.
	for i := 0; i < 3; i++ {
		if _, err := s.Detect(ctx, req); err != nil {
			t.Fatal(err)
		}
	}
	if st := s.Snapshot().ResultCache; st.HotEntries != 1 {
		t.Fatalf("digest not promoted before alloc run: %+v", st)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := s.Detect(ctx, req)
		if err != nil || !res.Cached {
			t.Fatalf("replicated path broke: %v %+v", err, res)
		}
	})
	if allocs != 0 {
		t.Fatalf("replicated Detect allocates %.1f/op, want 0", allocs)
	}
	if st := s.Snapshot().ResultCache; st.HotHits == 0 {
		t.Fatal("alloc run never touched the replica table")
	}
}

// Validate pairs the hot tier with the cache and rejects nonsense.
func TestHotConfigValidation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.HotThreshold = 8
	if err := cfg.Validate(); err == nil {
		t.Fatal("HotThreshold without CacheBytes validated")
	}
	cfg.CacheBytes = 1 << 20
	if err := cfg.Validate(); err != nil {
		t.Fatal(err)
	}
	for _, mut := range []func(*Config){
		func(c *Config) { c.HotThreshold = -1 },
		func(c *Config) { c.HotDecay = -1 },
		func(c *Config) { c.HotBytes = -1 },
	} {
		bad := cfg
		mut(&bad)
		if err := bad.Validate(); err == nil {
			t.Fatalf("negative hot knob validated: %+v", bad)
		}
	}
}
