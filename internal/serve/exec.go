package serve

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"time"

	"itask/internal/tensor"
)

// PanicError is a backend panic converted into a per-request error by the
// server's recover wrapper. It unwraps to ErrBackendPanic.
type PanicError struct {
	// Value is the recovered panic value.
	Value any
	// Stack is the goroutine stack captured at recovery.
	Stack []byte
}

func (e *PanicError) Error() string {
	return fmt.Sprintf("serve: backend panic: %v", e.Value)
}

func (e *PanicError) Unwrap() error { return ErrBackendPanic }

// isPanicOrHang reports whether err is the kind of failure that suggests a
// broken kernel or corrupt weights (rather than a clean refusal).
func isPanicOrHang(err error) bool {
	return errors.Is(err, ErrBackendPanic) || errors.Is(err, ErrWatchdog)
}

// execute runs one (sub-)batch end to end: it sheds cancelled and expired
// requests, invokes the backend under the watchdog and recover, records the
// lane's breaker outcome, and on failure bisects the batch to quarantine
// the poison request(s) while the rest are retried and succeed. Recursion
// depth is bounded by log2(len(items)) and each request re-executes at most
// Config.RetryBudget times.
func (s *Server) execute(variant, task string, items []*pending) {
	started := time.Now()
	live := make([]*pending, 0, len(items))
	imgs := make([]*tensor.Tensor, 0, len(items))
	for _, p := range items {
		switch {
		case p.cancelled.Load():
			s.m.inc(p.hint, cShedCancelled)
			s.m.tenantShed(p.tenant)
			s.releaseShedProbe(p)
			s.deliver(p, Outcome{Err: context.Canceled})
		case !p.deadline.IsZero() && started.After(p.deadline):
			s.m.inc(p.hint, cShedExpired)
			s.m.tenantShed(p.tenant)
			s.releaseShedProbe(p)
			s.deliver(p, Outcome{Err: ErrDeadlineExceeded})
		default:
			live = append(live, p)
			imgs = append(imgs, p.image)
		}
	}
	if len(live) == 0 {
		return
	}

	payloads, model, err := s.invoke(variant, task, imgs)
	dur := time.Since(started)
	s.recordExec(variant, task, err, dur)
	for _, p := range live {
		// The lane's breaker has now seen this execution: any probe slot the
		// request held is consumed, and shedding it during a later bisection
		// retry must not release a slot a newer probe may hold.
		p.probeKey = ""
	}

	if err == nil {
		finished := time.Now()
		s.m.observeBatch(len(live))
		var latSumUS float64
		for i, p := range live {
			total := finished.Sub(p.enq)
			s.m.observeLatency(p.hint, total)
			s.m.inc(p.hint, cCompleted)
			s.m.tenantCompleted(p.tenant, total, p.degraded != "")
			latSumUS += float64(total) / float64(time.Microsecond)
			if p.degraded != "" {
				s.m.inc(p.hint, cDegradedServed)
			}
			s.deliver(p, Outcome{Res: Result{
				Payload:   payloads[i],
				Model:     model,
				Tenant:    p.tenant,
				BatchSize: len(live),
				Degraded:  p.degraded,
				Queued:    started.Sub(p.enq),
				Total:     total,
			}})
		}
		s.m.modelCompleted(model, len(live), latSumUS)
		return
	}

	// Failure path: account the failure class (globally and against the
	// exact variant version), drop possibly-corrupt cached weights, report
	// the health verdict to the registry so a bad new version rolls back,
	// then quarantine by bisection. Retries of the bisected halves re-enter
	// execute with the same pinned variant string; after a rollback the
	// backend resolves it to the restored last-known-good version, so the
	// innocent batch-mates still succeed.
	switch {
	case errors.Is(err, ErrBackendPanic):
		s.m.inc(live[0].hint, cPanics)
		s.m.modelFault(variant, err)
		s.evictVariant(variant)
		s.variantUnhealthy(variant, task, UnhealthyPanic)
	case errors.Is(err, ErrWatchdog):
		s.m.inc(live[0].hint, cWatchdogs)
		s.m.modelFault(variant, err)
		s.evictVariant(variant)
		s.variantUnhealthy(variant, task, UnhealthyWatchdog)
	}
	if len(live) == 1 || s.cfg.RetryBudget <= 0 {
		for _, p := range live {
			s.fail(p, variant, err, len(live) == 1)
		}
		return
	}
	mid := len(live) / 2
	for _, half := range [][]*pending{live[:mid], live[mid:]} {
		retry := make([]*pending, 0, len(half))
		for _, p := range half {
			if p.attempts >= s.cfg.RetryBudget {
				s.fail(p, variant, err, false)
				continue
			}
			p.attempts++
			s.m.inc(p.hint, cRetries)
			retry = append(retry, p)
		}
		if len(retry) > 0 {
			s.execute(variant, task, retry)
		}
	}
}

// releaseShedProbe returns the half-open probe slot held by a request that
// was shed before its lane's breaker saw any execution outcome. Without the
// release, the lane would stay half-open with probing set and no probe ever
// running, denying every future request forever. No-op for non-probes.
func (s *Server) releaseShedProbe(p *pending) {
	if p.probeKey == "" {
		return
	}
	s.h.releaseProbe(p.probeKey)
	p.probeKey = ""
}

// fail delivers a terminal error to one request, attributing it to the
// lane's variant. isolated marks requests that failed alone (batch of one) —
// the quarantine verdict that this specific request, not its batch-mates, is
// the poison.
func (s *Server) fail(p *pending, variant string, err error, isolated bool) {
	s.m.inc(p.hint, cFailed)
	s.m.tenantFailed(p.tenant)
	s.m.modelFailed(variant, 1)
	if isolated && isPanicOrHang(err) {
		s.m.inc(p.hint, cQuarantined)
		if s.cache != nil && p.haveKey {
			// The content is proven poison on its routed version: mark it in
			// the negative cache so a hot poison frame fails fast at
			// admission instead of re-executing — and re-panicking — on
			// every arrival. The mark is scoped to this request's tenant;
			// other tenants' identical content re-proves itself instead of
			// inheriting the verdict. No-op unless Config.NegativeTTL is set.
			s.cache.PutNegative(p.key, p.tenant, time.Now())
		}
	}
	s.deliver(p, Outcome{Err: err})
}

// deliver is the single terminal delivery point for an executed request: it
// fills the result cache when the outcome is cacheable, resolves the
// request's flight if it leads one (sharing success with its followers,
// re-admitting them on failure), and hands the outcome to the caller.
func (s *Server) deliver(p *pending, out Outcome) {
	if s.cache != nil && out.Err == nil && p.haveKey &&
		out.Res.Degraded == "" && out.Res.Model == p.key.Artifact {
		// Cacheable: a non-degraded result produced by exactly the routed
		// artifact version. Fallback-served results, and results a registry
		// rollback redirected to another version mid-flight, never enter
		// the task-specific key.
		s.cache.Put(p.key, out.Res.Payload, time.Now())
	}
	if p.flight != nil {
		s.finishFlight(p, out)
	}
	p.done <- out
}

// finishFlight resolves a leader's flight exactly once. Success is shared:
// every follower receives the leader's result flagged Coalesced. Failure is
// not: each follower is re-admitted through the full fresh path (route,
// breaker, enqueue) and earns its own outcome, so poison content fails only
// the request that carried it. A follower re-execution never joins another
// flight, bounding every request at two executions.
func (s *Server) finishFlight(p *pending, out Outcome) {
	followers := s.flights.resolve(p.key, p.flight)
	p.flight = nil
	if len(followers) == 0 {
		return
	}
	if out.Err != nil {
		for _, f := range followers {
			s.m.inc(f.hint, cCoalescedRetried)
			s.resubmit(f)
		}
		return
	}
	now := time.Now()
	for _, f := range followers {
		res := out.Res
		res.Coalesced = true
		res.Queued = 0
		res.Total = now.Sub(f.enq)
		// Attribution follows the follower, not the leader: a coalesced
		// hit is the follower tenant's completion.
		res.Tenant = f.tenant
		s.m.inc(f.hint, cCoalesced)
		s.m.inc(f.hint, cCompleted)
		s.m.observeLatency(f.hint, res.Total)
		s.m.tenantCompleted(f.tenant, res.Total, res.Degraded != "")
		f.done <- Outcome{Res: res}
	}
}

// maxAbandonedPerVariant caps how many watchdog-abandoned executions may
// still be running on one variant. At the cap, invoke fails new batches
// fast with ErrWatchdog instead of starting another execution, so a
// permanently hung variant cannot grow an abandoned goroutine per probe or
// bisection retry without bound (each fast failure still counts against
// the lane's breaker).
const maxAbandonedPerVariant = 4

// invokeResult carries one backend execution's outcome out of its goroutine.
type invokeResult struct {
	payloads []any
	model    string
	err      error
}

// invoke runs one backend call under the watchdog deadline. When the
// backend hangs past Config.Watchdog the call is abandoned — its context is
// cancelled so a ContextBackend can stop the work; a plain Backend's
// goroutine keeps running until it returns on its own — and the batch fails
// with ErrWatchdog. Abandoned executions are counted per variant and capped
// at maxAbandonedPerVariant.
func (s *Server) invoke(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	if s.cfg.Watchdog <= 0 {
		return s.call(context.Background(), variant, task, imgs)
	}
	if n := s.abandonedOn(variant); n >= maxAbandonedPerVariant {
		return nil, "", fmt.Errorf("serve: %d abandoned executions still running on variant %s, failing fast: %w",
			n, variant, ErrWatchdog)
	}
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel() // on watchdog expiry this tells the abandoned execution to stop
	ch := make(chan invokeResult, 1)
	go func() {
		p, m, e := s.call(ctx, variant, task, imgs)
		ch <- invokeResult{p, m, e}
	}()
	timer := time.NewTimer(s.cfg.Watchdog)
	defer timer.Stop()
	select {
	case r := <-ch:
		return r.payloads, r.model, r.err
	case <-timer.C:
		s.trackAbandoned(variant, ch)
		return nil, "", fmt.Errorf("serve: batch of %d on lane %s/%s still executing after %v: %w",
			len(imgs), variant, task, s.cfg.Watchdog, ErrWatchdog)
	}
}

// abandonedOn reports how many watchdog-abandoned executions are still
// running on variant.
func (s *Server) abandonedOn(variant string) int {
	s.abMu.Lock()
	defer s.abMu.Unlock()
	return s.abandoned[variant]
}

// trackAbandoned counts one abandoned execution against variant and reaps
// the count when the execution's goroutine finally delivers its (discarded)
// result.
func (s *Server) trackAbandoned(variant string, ch <-chan invokeResult) {
	s.abMu.Lock()
	s.abandoned[variant]++
	s.abMu.Unlock()
	go func() {
		<-ch
		s.abMu.Lock()
		s.abandoned[variant]--
		s.abMu.Unlock()
	}()
}

// call is the recover boundary around the backend: a kernel panic becomes a
// *PanicError with the stack captured, so one poison request can never take
// down a worker or the server. Backends implementing ContextBackend get the
// execution context, cancelled when the watchdog abandons the call.
func (s *Server) call(ctx context.Context, variant, task string, imgs []*tensor.Tensor) (payloads []any, model string, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &PanicError{Value: r, Stack: debug.Stack()}
		}
	}()
	if cb, ok := s.backend.(ContextBackend); ok {
		payloads, model, err = cb.DetectBatchContext(ctx, variant, task, imgs)
	} else {
		payloads, model, err = s.backend.DetectBatch(variant, task, imgs)
	}
	if err == nil && len(payloads) != len(imgs) {
		err = fmt.Errorf("serve: backend returned %d payloads for %d images", len(payloads), len(imgs))
	}
	return payloads, model, err
}

// recordExec accounts one backend execution with the lane's breaker. A
// successful execution that overran the latency SLO counts as a failure
// ("slow is the new down"), so a lane that stops meeting its SLO trips open
// and traffic degrades to the quantized fallback.
func (s *Server) recordExec(variant, task string, err error, dur time.Duration) {
	ok := err == nil
	if ok && s.cfg.LatencySLO > 0 && dur > s.cfg.LatencySLO {
		ok = false
		s.m.inc(0, cSLOBreaches)
	}
	if opened := s.h.record(laneKey(variant, task), ok, time.Now()); opened {
		s.m.inc(0, cBreakerOpens)
		// A tripped lane is a health verdict on its variant version: let
		// the registry roll the artifact back to its last-known-good
		// version while the breaker sheds load.
		s.variantUnhealthy(variant, task, UnhealthyBreaker)
	}
}

// variantUnhealthy reports a health verdict on a variant to the backend's
// registry (panic, watchdog abandonment, or breaker trip), so a bad new
// version is demoted and its name rolls back to the previous good version.
// The demoted version's result-cache entries are swept in the same breath:
// routing already stopped resolving to the demoted ID, so its entries are
// dead weight, and reclaiming their bytes immediately gives the restored
// version's results the full budget instead of waiting out TTL/LRU churn.
func (s *Server) variantUnhealthy(variant, task, reason string) {
	if sink, ok := s.backend.(VariantHealthSink); ok {
		sink.VariantUnhealthy(variant, task, reason)
		if s.cache != nil {
			if n := s.cache.InvalidateArtifact(variant); n > 0 {
				s.m.addN(0, cArtifactSweeps, uint64(n))
			}
		}
	}
}

// evictVariant asks the backend to drop the variant's cached weights after
// a panic or watchdog expiry, so the next selection reloads from storage
// instead of trusting a possibly-corrupt resident copy.
func (s *Server) evictVariant(variant string) {
	if ev, ok := s.backend.(VariantEvicter); ok {
		ev.EvictVariant(variant)
		s.m.inc(0, cVariantEvictions)
	}
}
