package serve

import (
	"context"
	"errors"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/tensor"
)

// batchDelayBackend costs a fixed off-CPU delay per batch, regardless of
// batch size — the simplest model under which a queue position is worth a
// fixed amount of latency.
type batchDelayBackend struct{ delay time.Duration }

func (batchDelayBackend) Route(string) (string, error) { return "m@v1#aa", nil }
func (b batchDelayBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	time.Sleep(b.delay)
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	return out, variant, nil
}

// BenchmarkFairVsFIFO measures the latency a well-behaved minority tenant
// pays while a flooding tenant keeps the queue backlogged — the 2-tenant
// skewed workload from the ISSUE. ns/op is one paced light-tenant request,
// end to end.
//
//	fifo: both streams carry no tenant label, so everything lands in the
//	      default tenant's subqueue and DRR degenerates to the seed's FIFO —
//	      the light request waits behind the whole backlog.
//	fair: the flood is labeled "heavy", the paced stream "light", equal
//	      weights — DRR grants the light subqueue a slot every rotation
//	      regardless of backlog depth.
func BenchmarkFairVsFIFO(b *testing.B) {
	// 1ms per batch makes queueing discipline — not goroutine scheduling
	// noise on small CI boxes — the dominant term in the light tenant's
	// latency: a FIFO backlog of 128 is ~8 batch-times deep per worker.
	backend := batchDelayBackend{delay: time.Millisecond}
	for _, tc := range []struct {
		name string
		fair bool
	}{
		{name: "fifo"},
		{name: "fair", fair: true},
	} {
		b.Run(tc.name, func(b *testing.B) {
			cfg := Config{
				Workers: 2, MaxBatch: 8, BatchDelay: 0,
				QueueCap: 128, LatencyWindow: 1024,
			}
			heavy, light := DefaultTenant, DefaultTenant
			if tc.fair {
				cfg.TenantWeights = map[string]int{"heavy": 1, "light": 1}
				heavy, light = "heavy", "light"
			}
			s, err := New(backend, cfg)
			if err != nil {
				b.Fatal(err)
			}
			defer func() {
				ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
				defer cancel()
				_ = s.Shutdown(ctx)
			}()

			// Flooding tenant: one open-loop feeder pinning the queue at
			// its admission cap via async Submit (outcome channels are
			// buffered; the flood never reads them). Without an open loop
			// the backlog the light tenant must bypass never builds.
			var stop atomic.Bool
			var wg sync.WaitGroup
			wg.Add(1)
			go func() {
				defer wg.Done()
				scratch := benchImage(1_000_000, 4)
				for n := float32(0); !stop.Load(); n++ {
					scratch.Data[0] = n
					img := tensor.New(3, 4, 4)
					copy(img.Data, scratch.Data)
					_, err := s.Submit(Request{Task: "patrol", Image: img, Tenant: heavy})
					switch {
					case err == nil:
					case errors.Is(err, ErrQueueFull):
						// Back off instead of spin-retrying: on small CI
						// boxes a hot retry loop starves the runtime
						// scheduler and drowns the measurement.
						time.Sleep(200 * time.Microsecond)
					case errors.Is(err, ErrShuttingDown):
					default:
						b.Errorf("flood: %v", err)
						return
					}
				}
			}()
			// The flood must die even when the measurement fails, or it
			// keeps burning CPU under the next sub-benchmark.
			b.Cleanup(func() {
				stop.Store(true)
				wg.Wait()
			})
			// Let the flood build a backlog before timing.
			time.Sleep(50 * time.Millisecond)

			img := benchImage(999, 4)
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				img.Data[0] = float32(i)
				// In fifo mode the light tenant shares the flooded queue, so
				// admission itself fails intermittently; the retry wait is
				// part of the latency FIFO costs the well-behaved tenant.
				for {
					_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img, Tenant: light})
					if err == nil {
						break
					}
					if !errors.Is(err, ErrQueueFull) {
						b.Fatal(err)
					}
					time.Sleep(200 * time.Microsecond)
				}
			}
			b.StopTimer()
		})
	}
}

// BenchmarkTenantMetrics isolates the per-tenant attribution write added to
// every completion (sync.Map lookup + padded counters + latency ring).
func BenchmarkTenantMetrics(b *testing.B) {
	m := newMetrics(8, 4096)
	b.RunParallel(func(pb *testing.PB) {
		var n uint64
		for pb.Next() {
			n++
			m.tenantCompleted("bench-tenant", time.Duration(n), false)
		}
	})
}
