package serve

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"time"
)

// breakerState is the classic three-state circuit-breaker automaton.
type breakerState uint8

const (
	stClosed breakerState = iota
	stOpen
	stHalfOpen
)

func (s breakerState) String() string {
	switch s {
	case stOpen:
		return "open"
	case stHalfOpen:
		return "half-open"
	default:
		return "closed"
	}
}

// breaker tracks the health of one (variant, task) lane. Guarded by the
// owning health registry's mutex.
type breaker struct {
	state    breakerState
	failures int // consecutive failed executions while closed
	backoff  time.Duration
	retryAt  time.Time // when an open breaker next admits a probe
	probing  bool      // a half-open probe is in flight
	opens    uint64
}

// health is the per-lane circuit-breaker registry. Breakers trip on
// consecutive execution failures (panics, errors, watchdog expiries, and —
// when a LatencySLO is configured — slow executions), stay open for an
// exponentially growing backoff, and heal through a single half-open probe
// request that rides the normal lane.
type health struct {
	threshold  int
	backoff    time.Duration
	maxBackoff time.Duration

	mu    sync.Mutex
	lanes map[string]*breaker
}

func newHealth(threshold int, backoff, maxBackoff time.Duration) *health {
	if maxBackoff < backoff {
		maxBackoff = backoff
	}
	return &health{
		threshold:  threshold,
		backoff:    backoff,
		maxBackoff: maxBackoff,
		lanes:      map[string]*breaker{},
	}
}

// admitDecision is the outcome of consulting a lane's breaker at admission.
type admitDecision uint8

const (
	// admitOK: the lane is healthy, proceed.
	admitOK admitDecision = iota
	// admitProbe: the lane is half-open and this request claimed the
	// single probe slot; the caller must releaseProbe if the request never
	// reaches execution.
	admitProbe
	// admitDeny: the breaker is open (or a probe is already in flight);
	// route to a fallback or reject.
	admitDeny
)

// admit consults the breaker for key. Disabled breakers always admit.
func (h *health) admit(key string, now time.Time) admitDecision {
	if h.threshold <= 0 {
		return admitOK
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	br := h.lanes[key]
	if br == nil {
		return admitOK
	}
	switch br.state {
	case stOpen:
		if now.Before(br.retryAt) {
			return admitDeny
		}
		br.state = stHalfOpen
		br.probing = true
		return admitProbe
	case stHalfOpen:
		if br.probing {
			return admitDeny
		}
		br.probing = true
		return admitProbe
	default:
		return admitOK
	}
}

// releaseProbe returns a claimed half-open probe slot when the probing
// request failed admission downstream (queue full, shutting down), so the
// lane is not stuck half-open with no probe ever executing.
func (h *health) releaseProbe(key string) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if br := h.lanes[key]; br != nil && br.state == stHalfOpen {
		br.probing = false
	}
}

// record accounts one backend execution outcome for key and reports whether
// this observation tripped the breaker open.
func (h *health) record(key string, ok bool, now time.Time) (opened bool) {
	if h.threshold <= 0 {
		return false
	}
	h.mu.Lock()
	defer h.mu.Unlock()
	br := h.lanes[key]
	if br == nil {
		br = &breaker{}
		h.lanes[key] = br
	}
	if ok {
		br.state = stClosed
		br.failures = 0
		br.probing = false
		br.backoff = 0
		return false
	}
	br.failures++
	switch br.state {
	case stHalfOpen:
		// Failed probe: reopen with doubled backoff.
		br.backoff *= 2
		if br.backoff == 0 {
			br.backoff = h.backoff
		}
		if br.backoff > h.maxBackoff {
			br.backoff = h.maxBackoff
		}
		br.state = stOpen
		br.retryAt = now.Add(br.backoff)
		br.probing = false
		br.opens++
		return true
	case stClosed:
		if br.failures >= h.threshold {
			br.state = stOpen
			br.backoff = h.backoff
			br.retryAt = now.Add(br.backoff)
			br.opens++
			return true
		}
	}
	return false
}

// retryAfter reports how long until an open breaker admits its next probe.
func (h *health) retryAfter(key string, now time.Time) time.Duration {
	h.mu.Lock()
	defer h.mu.Unlock()
	br := h.lanes[key]
	if br == nil || br.state != stOpen {
		return 0
	}
	if d := br.retryAt.Sub(now); d > 0 {
		return d
	}
	return 0
}

// LaneBreaker is the snapshot of one lane's circuit breaker, shaped for the
// /metricsz endpoint.
type LaneBreaker struct {
	Variant             string  `json:"variant"`
	Task                string  `json:"task"`
	State               string  `json:"state"`
	ConsecutiveFailures int     `json:"consecutive_failures"`
	Opens               uint64  `json:"opens"`
	RetryAfterMS        float64 `json:"retry_after_ms,omitempty"`
}

// snapshot returns all tracked lane breakers, sorted by (variant, task).
func (h *health) snapshot(now time.Time) []LaneBreaker {
	h.mu.Lock()
	out := make([]LaneBreaker, 0, len(h.lanes))
	for key, br := range h.lanes {
		variant, task, _ := strings.Cut(key, laneKeySep)
		lb := LaneBreaker{
			Variant:             variant,
			Task:                task,
			State:               br.state.String(),
			ConsecutiveFailures: br.failures,
			Opens:               br.opens,
		}
		if br.state == stOpen {
			if d := br.retryAt.Sub(now); d > 0 {
				lb.RetryAfterMS = float64(d) / float64(time.Millisecond)
			}
		}
		out = append(out, lb)
	}
	h.mu.Unlock()
	sort.Slice(out, func(i, j int) bool {
		if out[i].Variant != out[j].Variant {
			return out[i].Variant < out[j].Variant
		}
		return out[i].Task < out[j].Task
	})
	return out
}

// laneKeySep joins (variant, task) into lane and breaker map keys.
const laneKeySep = "\x1f"

func laneKey(variant, task string) string { return variant + laneKeySep + task }

// BreakerOpenError is returned by Submit when the routed lane's circuit
// breaker is open and no healthy fallback variant exists. It unwraps to
// ErrBreakerOpen; RetryAfter is how long until the breaker admits a probe
// (the Retry-After header of the HTTP 503).
type BreakerOpenError struct {
	Variant    string
	Task       string
	RetryAfter time.Duration
}

func (e *BreakerOpenError) Error() string {
	return fmt.Sprintf("serve: circuit open for variant %q task %q (retry in %v)",
		e.Variant, e.Task, e.RetryAfter.Round(time.Millisecond))
}

func (e *BreakerOpenError) Unwrap() error { return ErrBreakerOpen }
