package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"

	"itask/internal/tensor"
)

// versionedBackend is a fake backend whose routing table carries versioned
// artifact IDs and a route epoch, like the pipeline backend: swap() changes
// the variant every task routes to and bumps the epoch, modeling a registry
// publish or rollback. DetectBatch executes on the pinned variant (returning
// it as the serving model unless serveAs overrides it), counts per-variant
// executions, and can fail or block on demand.
type versionedBackend struct {
	mu      sync.Mutex
	variant string
	execs   map[string]int
	// serveAs, when non-empty, is returned as the model instead of the
	// executed variant — simulating a mid-flight registry redirect.
	serveAs string
	// failOn makes executions on that variant return an error.
	failOn string
	// failOnce makes exactly the next execution fail.
	failOnce bool
	fallback string

	epoch uint64

	// enter/release gate executions: when enter is non-nil every DetectBatch
	// signals it and then blocks until release is closed.
	enter   chan struct{}
	release chan struct{}
}

func newVersionedBackend(variant string) *versionedBackend {
	return &versionedBackend{variant: variant, execs: map[string]int{}, epoch: 1}
}

func (b *versionedBackend) Route(string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.variant, nil
}

func (b *versionedBackend) RouteEpoch() uint64 {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.epoch
}

func (b *versionedBackend) RouteFallback(string) (string, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.fallback == "" {
		return "", errors.New("no fallback")
	}
	return b.fallback, nil
}

// swap models a publish or rollback: every route now resolves to variant
// and the epoch bump invalidates the server's memoized routes.
func (b *versionedBackend) swap(variant string) {
	b.mu.Lock()
	defer b.mu.Unlock()
	b.variant = variant
	b.epoch++
}

func (b *versionedBackend) executions(variant string) int {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.execs[variant]
}

func (b *versionedBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	b.mu.Lock()
	b.execs[variant]++
	enter, release := b.enter, b.release
	model := variant
	if b.serveAs != "" {
		model = b.serveAs
	}
	fail := b.failOn == variant || b.failOnce
	b.failOnce = false
	b.mu.Unlock()
	if enter != nil {
		enter <- struct{}{}
		<-release
	}
	if fail {
		return nil, "", errors.New("versioned: forced failure")
	}
	out := make([]any, len(imgs))
	for i := range imgs {
		out[i] = i
	}
	return out, model, nil
}

func cacheConfig() Config {
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	cfg.CacheBytes = 1 << 20
	cfg.CacheTTL = time.Minute
	return cfg
}

// A repeated identical request is served from the result cache: one backend
// execution, the second response flagged Cached with the same payload.
func TestCacheHitServesWithoutExecution(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	s := newTestServer(t, b, cacheConfig())
	img := testImage()

	first, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if first.Cached {
		t.Fatal("first request can't be a cache hit")
	}
	second, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img})
	if err != nil {
		t.Fatal(err)
	}
	if !second.Cached {
		t.Fatal("identical repeat not served from cache")
	}
	if second.Model != "m@v1#aa" || second.Payload.(int) != first.Payload.(int) {
		t.Fatalf("cached result differs: %+v vs %+v", second, first)
	}
	if n := b.executions("m@v1#aa"); n != 1 {
		t.Fatalf("backend executed %d times, want 1", n)
	}
	snap := s.Snapshot()
	if snap.ResultCacheHits != 1 || snap.ResultCacheMisses != 1 {
		t.Fatalf("hits/misses = %d/%d, want 1/1", snap.ResultCacheHits, snap.ResultCacheMisses)
	}
	if snap.Accepted != 2 || snap.Completed != 2 {
		t.Fatalf("books: accepted=%d completed=%d, want 2/2", snap.Accepted, snap.Completed)
	}
	if snap.ResultCache == nil || snap.ResultCache.Entries != 1 {
		t.Fatalf("ResultCache stats not surfaced: %+v", snap.ResultCache)
	}
}

// Distinct tasks and distinct image content never share a cache entry.
func TestCacheKeySeparation(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	s := newTestServer(t, b, cacheConfig())
	img := testImage()
	other := testImage()
	other.Data[0] = 0.5

	for _, req := range []Request{
		{Task: "patrol", Image: img},
		{Task: "rescue", Image: img},
		{Task: "patrol", Image: other},
	} {
		res, err := s.Detect(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatalf("request %q unexpectedly hit the cache", req.Task)
		}
	}
	if n := b.executions("m@v1#aa"); n != 3 {
		t.Fatalf("backend executed %d times, want 3", n)
	}
}

// A publish (new routed version, epoch bump) makes the old version's cache
// entries unreachable: the key pins the full versioned artifact ID. A
// rollback to the old version re-serves its still-TTL-valid entries, and a
// rollback after the TTL re-executes instead of resurrecting stale results.
func TestCacheVersionInteraction(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	cfg := cacheConfig()
	cfg.CacheTTL = 80 * time.Millisecond
	s := newTestServer(t, b, cfg)
	img := testImage()
	detect := func() Result {
		t.Helper()
		res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}

	detect() // warm v1's entry

	b.swap("m@v2#bb") // publish v2
	res := detect()
	if res.Cached || res.Model != "m@v2#bb" {
		t.Fatalf("post-publish request served %+v, want fresh v2 execution", res)
	}

	b.swap("m@v1#aa") // rollback within the TTL
	res = detect()
	if !res.Cached || res.Model != "m@v1#aa" {
		t.Fatalf("rollback within TTL served %+v, want v1 cache hit", res)
	}
	if n := b.executions("m@v1#aa"); n != 1 {
		t.Fatalf("v1 executed %d times, want 1", n)
	}

	b.swap("m@v2#bb")
	time.Sleep(120 * time.Millisecond) // let v1's entry expire
	b.swap("m@v1#aa")                  // rollback after the TTL
	res = detect()
	if res.Cached {
		t.Fatal("rollback after TTL served a stale cached result")
	}
	if n := b.executions("m@v1#aa"); n != 2 {
		t.Fatalf("v1 executed %d times after stale rollback, want 2", n)
	}
}

// A result served by a different model than the routed key — the fallback
// variant while a breaker is open, or a mid-flight registry redirect — is
// never cached under the task-specific key.
func TestDegradedResultNeverCached(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	b.failOn = "m@v1#aa"
	b.fallback = "fb@v1#ff"
	cfg := cacheConfig()
	cfg.RetryBudget = 0
	cfg.BreakerThreshold = 1
	cfg.BreakerBackoff = time.Minute
	s := newTestServer(t, b, cfg)
	img := testImage()

	// Trip the v1 lane's breaker.
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img}); err == nil {
		t.Fatal("poisoned lane succeeded")
	}
	for i := 0; i < 2; i++ {
		res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img})
		if err != nil {
			t.Fatal(err)
		}
		if res.Degraded == "" || res.Model != "fb@v1#ff" {
			t.Fatalf("expected fallback-served degraded result, got %+v", res)
		}
		if res.Cached {
			t.Fatal("degraded result served from cache")
		}
	}
	// Both degraded requests executed — nothing was cached under the
	// task-specific v1 key.
	if n := b.executions("fb@v1#ff"); n != 2 {
		t.Fatalf("fallback executed %d times, want 2 (no caching)", n)
	}
	if snap := s.Snapshot(); snap.ResultCacheHits != 0 {
		t.Fatalf("ResultCacheHits = %d, want 0", snap.ResultCacheHits)
	}
}

// A mid-flight redirect (executed model != routed key) must not fill the
// cache either, even when the result is not flagged degraded.
func TestRedirectedResultNeverCached(t *testing.T) {
	b := newVersionedBackend("m@v2#bb")
	b.serveAs = "m@v1#aa" // registry rolled back between route and execute
	s := newTestServer(t, b, cacheConfig())
	img := testImage()

	for i := 0; i < 2; i++ {
		res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img})
		if err != nil {
			t.Fatal(err)
		}
		if res.Cached {
			t.Fatal("redirected result served from cache")
		}
	}
	if n := b.executions("m@v2#bb"); n != 2 {
		t.Fatalf("backend executed %d times, want 2", n)
	}
}

// Concurrent identical requests that miss the cache collapse into one
// execution: the leader runs, followers share its result flagged Coalesced.
func TestCoalesceSharesOneExecution(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	b.enter = make(chan struct{}, 16)
	b.release = make(chan struct{})
	cfg := cacheConfig()
	cfg.Coalesce = true
	cfg.MaxBatch = 1
	cfg.QueueCap = 64
	s := newTestServer(t, b, cfg)
	img := testImage()
	req := Request{Task: "patrol", Image: img}

	leader, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-b.enter // leader is executing; followers will join its flight

	const followers = 5
	var chans []<-chan Outcome
	for i := 0; i < followers; i++ {
		ch, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	close(b.release)

	if out := <-leader; out.Err != nil || out.Res.Coalesced {
		t.Fatalf("leader outcome %+v, want plain success", out)
	}
	for i, ch := range chans {
		out := <-ch
		if out.Err != nil {
			t.Fatalf("follower %d failed: %v", i, out.Err)
		}
		if !out.Res.Coalesced {
			t.Fatalf("follower %d not coalesced: %+v", i, out.Res)
		}
	}
	if n := b.executions("m@v1#aa"); n != 1 {
		t.Fatalf("backend executed %d times, want 1", n)
	}
	snap := s.Snapshot()
	if snap.Coalesced != followers {
		t.Fatalf("Coalesced = %d, want %d", snap.Coalesced, followers)
	}
	if snap.Accepted != followers+1 || snap.Completed != followers+1 {
		t.Fatalf("books: accepted=%d completed=%d, want %d", snap.Accepted, snap.Completed, followers+1)
	}
}

// A failed leader never fails its followers: each follower is re-admitted
// and re-executed individually, earning its own (successful) outcome.
func TestFailedLeaderFollowersReexecute(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	b.enter = make(chan struct{}, 16)
	b.release = make(chan struct{})
	b.failOnce = true // exactly the leader's execution fails
	cfg := cacheConfig()
	cfg.Coalesce = true
	cfg.MaxBatch = 8
	cfg.QueueCap = 64
	cfg.RetryBudget = 0
	s := newTestServer(t, b, cfg)
	img := testImage()
	req := Request{Task: "patrol", Image: img}

	leader, err := s.Submit(req)
	if err != nil {
		t.Fatal(err)
	}
	<-b.enter

	const followers = 4
	var chans []<-chan Outcome
	for i := 0; i < followers; i++ {
		ch, err := s.Submit(req)
		if err != nil {
			t.Fatal(err)
		}
		chans = append(chans, ch)
	}
	go func() {
		// Re-executions re-enter the gate; drain their signals.
		for range b.enter {
		}
	}()
	close(b.release)

	if out := <-leader; out.Err == nil {
		t.Fatal("leader must fail: its execution failed")
	}
	for i, ch := range chans {
		out := <-ch
		if out.Err != nil {
			t.Fatalf("follower %d inherited the leader's failure: %v", i, out.Err)
		}
		if out.Res.Coalesced {
			t.Fatalf("follower %d flagged Coalesced after re-execution", i)
		}
	}
	if n := b.executions("m@v1#aa"); n < 2 {
		t.Fatalf("backend executed %d times, want >= 2 (leader + re-executions)", n)
	}
	snap := s.Snapshot()
	if snap.CoalescedRetried != followers {
		t.Fatalf("CoalescedRetried = %d, want %d", snap.CoalescedRetried, followers)
	}
	if snap.Failed != 1 {
		t.Fatalf("Failed = %d, want 1 (the leader alone)", snap.Failed)
	}
	if snap.Completed != followers {
		t.Fatalf("Completed = %d, want %d", snap.Completed, followers)
	}
}

// The cached hit path allocates nothing: admission, route memoization,
// cache probe, and metrics are all allocation-free.
func TestDetectCachedHitZeroAllocs(t *testing.T) {
	b := newVersionedBackend("m@v1#aa")
	cfg := cacheConfig()
	cfg.Coalesce = true
	s := newTestServer(t, b, cfg)
	img := testImage()
	req := Request{Task: "patrol", Image: img}
	ctx := context.Background()

	if _, err := s.Detect(ctx, req); err != nil {
		t.Fatal(err)
	}
	allocs := testing.AllocsPerRun(1000, func() {
		res, err := s.Detect(ctx, req)
		if err != nil || !res.Cached {
			t.Fatalf("hit path broke: %v %+v", err, res)
		}
	})
	if allocs != 0 {
		t.Fatalf("cached Detect allocates %.1f/op, want 0", allocs)
	}
}
