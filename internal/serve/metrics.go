package serve

import (
	"errors"
	"sort"
	"sync"
	"time"

	"itask/internal/registry"
	"itask/internal/sched"
)

// metrics accumulates serving counters and a sliding window of request
// latencies. A single mutex is fine here: observations are O(1) and the
// expensive percentile sort happens only in snapshot().
type metrics struct {
	mu sync.Mutex

	accepted        uint64
	completed       uint64
	failed          uint64
	rejectedFull    uint64
	rejectedClosed  uint64
	rejectedRoute   uint64
	rejectedShape   uint64
	rejectedBreaker uint64
	shedExpired     uint64
	shedCancelled   uint64

	// Fault-tolerance counters.
	panics           uint64 // backend panics recovered
	watchdogs        uint64 // executions abandoned by the watchdog
	retries          uint64 // per-request quarantine re-executions
	quarantined      uint64 // requests failed in isolation (batch of one)
	sloBreaches      uint64 // successful executions slower than LatencySLO
	breakerOpens     uint64 // closed/half-open -> open transitions
	degradedRouted   uint64 // admissions rerouted to the fallback variant
	degradedServed   uint64 // requests completed on the fallback variant
	variantEvictions uint64 // cached variants dropped after panic/watchdog

	batches   uint64
	batchHist []uint64 // index i counts batches of size i+1

	latUS    []float64 // ring buffer of recent latencies, microseconds
	latNext  int
	latCount uint64 // total latencies ever observed

	// perModel attributes work and faults to the exact model variant
	// (versioned artifact ID) that executed it, so /metricsz can show a
	// bad new version panicking while its rolled-back predecessor serves.
	perModel map[string]*modelCounters
}

// modelCounters accumulates one variant's per-version attribution.
type modelCounters struct {
	completed uint64
	failed    uint64
	panics    uint64
	watchdogs uint64
	latSumUS  float64
}

func newMetrics(maxBatch, window int) *metrics {
	return &metrics{
		batchHist: make([]uint64, maxBatch),
		latUS:     make([]float64, 0, window),
		perModel:  map[string]*modelCounters{},
	}
}

// model returns (creating if needed) the counters for one variant string.
// Caller holds m.mu.
func (m *metrics) model(name string) *modelCounters {
	mc := m.perModel[name]
	if mc == nil {
		mc = &modelCounters{}
		m.perModel[name] = mc
	}
	return mc
}

// modelCompleted attributes n completed requests (with their summed
// admission-to-completion latency) to the model that served them.
func (m *metrics) modelCompleted(model string, n int, latSumUS float64) {
	if model == "" {
		return
	}
	m.mu.Lock()
	mc := m.model(model)
	mc.completed += uint64(n)
	mc.latSumUS += latSumUS
	m.mu.Unlock()
}

// modelFault attributes one failed execution to the lane's variant,
// classifying panics and watchdog abandonments.
func (m *metrics) modelFault(variant string, err error) {
	if variant == "" {
		return
	}
	m.mu.Lock()
	mc := m.model(variant)
	switch {
	case errors.Is(err, ErrBackendPanic):
		mc.panics++
	case errors.Is(err, ErrWatchdog):
		mc.watchdogs++
	}
	m.mu.Unlock()
}

// modelFailed attributes n terminally failed requests to the lane's variant.
func (m *metrics) modelFailed(variant string, n int) {
	if variant == "" {
		return
	}
	m.mu.Lock()
	m.model(variant).failed += uint64(n)
	m.mu.Unlock()
}

func (m *metrics) add(field *uint64, n uint64) {
	m.mu.Lock()
	*field += n
	m.mu.Unlock()
}

func (m *metrics) observeBatch(size int) {
	m.mu.Lock()
	m.batches++
	if size >= 1 && size <= len(m.batchHist) {
		m.batchHist[size-1]++
	}
	m.mu.Unlock()
}

func (m *metrics) observeLatency(d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	m.mu.Lock()
	if len(m.latUS) < cap(m.latUS) {
		m.latUS = append(m.latUS, us)
	} else {
		m.latUS[m.latNext] = us
		m.latNext = (m.latNext + 1) % len(m.latUS)
	}
	m.latCount++
	m.mu.Unlock()
}

// Snapshot is a point-in-time view of the serving layer, shaped for the
// /metricsz endpoint.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Admission counters.
	Accepted        uint64 `json:"accepted"`
	Completed       uint64 `json:"completed"`
	Failed          uint64 `json:"failed"`
	RejectedFull    uint64 `json:"rejected_queue_full"`
	RejectedClosed  uint64 `json:"rejected_shutting_down"`
	RejectedRoute   uint64 `json:"rejected_unroutable"`
	RejectedShape   uint64 `json:"rejected_bad_shape"`
	RejectedBreaker uint64 `json:"rejected_breaker_open"`
	ShedExpired     uint64 `json:"shed_deadline_expired"`
	ShedCancelled   uint64 `json:"shed_cancelled"`

	// Fault-tolerance counters: recovered backend panics, watchdog-
	// abandoned executions, quarantine bisection retries, requests failed
	// in isolation as the proven poison, latency-SLO breaches, breaker
	// trips, traffic rerouted to / completed on the quantized fallback,
	// and cached variants evicted after a panic or hang.
	PanicsRecovered  uint64 `json:"panics_recovered"`
	WatchdogTimeouts uint64 `json:"watchdog_timeouts"`
	QuarantineRetry  uint64 `json:"quarantine_retries"`
	Quarantined      uint64 `json:"quarantined_poison"`
	SLOBreaches      uint64 `json:"slo_breaches"`
	BreakerOpens     uint64 `json:"breaker_opens"`
	DegradedRouted   uint64 `json:"degraded_routed"`
	DegradedServed   uint64 `json:"degraded_served"`
	VariantEvictions uint64 `json:"variant_evictions"`

	// Breakers lists every (variant, task) lane's circuit-breaker state.
	Breakers []LaneBreaker `json:"breakers,omitempty"`

	// QueueDepth is the number of admitted requests waiting in lanes.
	QueueDepth int `json:"queue_depth"`

	// ThroughputRPS is completed requests per second of uptime.
	ThroughputRPS float64 `json:"throughput_rps"`

	// Latency percentiles over the recent window, microseconds.
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP95US float64 `json:"latency_p95_us"`
	LatencyP99US float64 `json:"latency_p99_us"`

	// Batching behaviour: total batches, mean executed batch size, and the
	// batch-size histogram (index i counts batches of size i+1).
	Batches   uint64   `json:"batches"`
	MeanBatch float64  `json:"mean_batch"`
	BatchHist []uint64 `json:"batch_hist"`

	// Cache surfaces the scheduler's model-cache stats when the backend
	// exposes them (nil otherwise); CacheHitRate is Hits/(Hits+Misses).
	Cache        *sched.CacheStats `json:"cache,omitempty"`
	CacheHitRate float64           `json:"cache_hit_rate"`

	// PerModel attributes completions, failures, and faults to the exact
	// model variant (versioned artifact ID) that executed them, sorted by
	// variant string. After a bad publish, the demoted version's panics and
	// the rolled-back version's completions appear side by side here.
	PerModel []ModelStats `json:"per_model,omitempty"`

	// Registry surfaces publish/rollback/demotion counters when the
	// backend exposes a versioned model registry (nil otherwise).
	Registry *registry.Stats `json:"registry,omitempty"`
}

// ModelStats is one variant's per-version attribution in a Snapshot.
type ModelStats struct {
	// Model is the variant string — a full versioned artifact ID for the
	// pipeline backend.
	Model     string `json:"model"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed,omitempty"`
	Panics    uint64 `json:"panics,omitempty"`
	Watchdogs uint64 `json:"watchdogs,omitempty"`
	// MeanLatencyUS is the mean admission-to-completion latency of this
	// variant's completed requests, microseconds.
	MeanLatencyUS float64 `json:"mean_latency_us,omitempty"`
}

func (m *metrics) snapshot(uptime time.Duration, queueDepth int) Snapshot {
	m.mu.Lock()
	snap := Snapshot{
		UptimeSeconds:    uptime.Seconds(),
		Accepted:         m.accepted,
		Completed:        m.completed,
		Failed:           m.failed,
		RejectedFull:     m.rejectedFull,
		RejectedClosed:   m.rejectedClosed,
		RejectedRoute:    m.rejectedRoute,
		RejectedShape:    m.rejectedShape,
		RejectedBreaker:  m.rejectedBreaker,
		ShedExpired:      m.shedExpired,
		ShedCancelled:    m.shedCancelled,
		PanicsRecovered:  m.panics,
		WatchdogTimeouts: m.watchdogs,
		QuarantineRetry:  m.retries,
		Quarantined:      m.quarantined,
		SLOBreaches:      m.sloBreaches,
		BreakerOpens:     m.breakerOpens,
		DegradedRouted:   m.degradedRouted,
		DegradedServed:   m.degradedServed,
		VariantEvictions: m.variantEvictions,
		QueueDepth:       queueDepth,
		Batches:          m.batches,
		BatchHist:        append([]uint64(nil), m.batchHist...),
	}
	for name, mc := range m.perModel {
		ms := ModelStats{
			Model:     name,
			Completed: mc.completed,
			Failed:    mc.failed,
			Panics:    mc.panics,
			Watchdogs: mc.watchdogs,
		}
		if mc.completed > 0 {
			ms.MeanLatencyUS = mc.latSumUS / float64(mc.completed)
		}
		snap.PerModel = append(snap.PerModel, ms)
	}
	lat := append([]float64(nil), m.latUS...)
	m.mu.Unlock()
	sort.Slice(snap.PerModel, func(i, j int) bool { return snap.PerModel[i].Model < snap.PerModel[j].Model })

	if uptime > 0 {
		snap.ThroughputRPS = float64(snap.Completed) / uptime.Seconds()
	}
	if snap.Batches > 0 {
		// batches counts successfully executed batches, completed their
		// member requests.
		snap.MeanBatch = float64(snap.Completed) / float64(snap.Batches)
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		snap.LatencyP50US = percentile(lat, 0.50)
		snap.LatencyP95US = percentile(lat, 0.95)
		snap.LatencyP99US = percentile(lat, 0.99)
	}
	return snap
}

// percentile reads the q-quantile from sorted by nearest rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
