package serve

import (
	"errors"
	"math"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"itask/internal/rcache"
	"itask/internal/registry"
	"itask/internal/sched"
)

// The serving layer's metrics are fully sharded and lock-free on the hot
// path. The previous implementation funneled every admit, complete, fail,
// and batch observation through one global mutex — at high core counts that
// single cache line was the throughput ceiling, not the kernels. Now:
//
//   - Counters live in N padded per-shard atomic blocks (counterShard).
//     Writers pick a shard from a per-request hint (image digest mixed with
//     the admission timestamp) so concurrent requests touch different cache
//     lines; a shard is 128-byte aligned-and-padded so two shards never
//     false-share.
//   - Latencies go to a striped ring: each stripe owns a private mutex and
//     a slice of the window, so percentile bookkeeping contends only
//     1/stripes as often, and snapshot() copies stripe-by-stripe (never all
//     stripes at once) and sorts entirely outside any lock.
//   - Per-model attribution lives in a sync.Map of atomic counter blocks,
//     so /metricsz aggregation never stalls admission or execution.
//
// snapshot() is O(shards·counters + window log window + models) with no
// writer-visible lock held across any sort.

// counterIdx names one sharded counter. Keep numCounters last.
type counterIdx int

const (
	cAccepted counterIdx = iota
	cCompleted
	cFailed
	cRejectedFull
	cRejectedClosed
	cRejectedRoute
	cRejectedShape
	cRejectedBreaker
	cShedExpired
	cShedCancelled

	// Fault-tolerance counters.
	cPanics           // backend panics recovered
	cWatchdogs        // executions abandoned by the watchdog
	cRetries          // per-request quarantine re-executions
	cQuarantined      // requests failed in isolation (batch of one)
	cSLOBreaches      // successful executions slower than LatencySLO
	cBreakerOpens     // closed/half-open -> open transitions
	cDegradedRouted   // admissions rerouted to the fallback variant
	cDegradedServed   // requests completed on the fallback variant
	cVariantEvictions // cached variants dropped after panic/watchdog

	cBatches

	// Zero-contention request path counters.
	cCacheHits        // requests served straight from the result cache
	cCacheMisses      // requests that had a cache key but found no entry
	cCoalesced        // followers served by a coalesced leader's execution
	cCoalescedRetried // followers re-executed after their leader failed

	// Invalidation counters.
	cQuarantineBlocked // admissions refused from the poison negative cache
	cArtifactSweeps    // result-cache entries reclaimed by demote sweeps

	// Multi-tenant admission counters.
	cRejectedBudget // admissions refused by a tenant's token-bucket budget
	cRejectedShare  // admissions refused by the weighted queue-share guard

	numCounters
)

// counterShard is one padded block of counters. The pad rounds the struct
// up to a multiple of 128 bytes (two typical cache lines, covering spatial
// prefetch pairs) so adjacent shards never share a line.
type counterShard struct {
	c [numCounters]atomic.Uint64
	_ [(128 - (numCounters*8)%128) % 128]byte
}

// latStripe is one stripe of the latency window: a private ring under a
// private mutex, padded like counterShard.
type latStripe struct {
	mu   sync.Mutex
	buf  []float64 // ring of recent latencies, microseconds
	next int
	_    [64]byte
}

// metrics accumulates serving counters, the striped latency window, the
// batch-size histogram, and per-model attribution. All observation methods
// are lock-free or stripe-local; only snapshot() aggregates.
type metrics struct {
	shards     []counterShard
	shardMask  uint64
	stripes    []latStripe
	stripeMask uint64

	batches   atomic.Uint64
	batchHist []atomic.Uint64 // index i counts batches of size i+1

	// perModel maps variant string (versioned artifact ID) -> *modelCounters,
	// so /metricsz can show a bad new version panicking while its
	// rolled-back predecessor serves.
	perModel sync.Map

	// perTenant maps tenant ID -> *tenantCounters, so /metricsz can show
	// one tenant's poison storm failing and shedding next to another
	// tenant's clean completions. Bounded at maxTenantStats distinct
	// tenants (see tenant); overflow lumps into overflowTenant.
	perTenant sync.Map
	tenants   atomic.Int64
}

// maxTenantStats caps distinct per-tenant attribution entries; tenant IDs
// are length-bounded at the edge but not cardinality-bounded, and metrics
// must never become the unbounded map an attacker grows one header at a
// time.
const maxTenantStats = 1024

// overflowTenant aggregates attribution for tenants beyond maxTenantStats.
const overflowTenant = "~overflow"

// tenantLatWindow is the per-tenant latency ring size — enough for a
// stable p99 per tenant without rivaling the global striped window.
const tenantLatWindow = 512

// tenantCounters accumulates one tenant's attribution. Counters are
// atomic; the latency ring has a private mutex (one tenant's observations
// contend only with that tenant's own).
type tenantCounters struct {
	completed atomic.Uint64
	failed    atomic.Uint64
	shed      atomic.Uint64
	degraded  atomic.Uint64
	rejected  atomic.Uint64

	mu   sync.Mutex
	lat  []float64 // ring of recent latencies, microseconds
	next int
}

// modelCounters accumulates one variant's per-version attribution, all
// atomic so attribution never takes a lock on the execution path.
type modelCounters struct {
	completed atomic.Uint64
	failed    atomic.Uint64
	panics    atomic.Uint64
	watchdogs atomic.Uint64
	latSumUS  atomic.Uint64 // float64 bits; updated by addFloat
}

// addFloat adds v to a float64 stored as atomic bits (CAS loop).
func addFloat(a *atomic.Uint64, v float64) {
	for {
		old := a.Load()
		if a.CompareAndSwap(old, math.Float64bits(math.Float64frombits(old)+v)) {
			return
		}
	}
}

// nextPow2 rounds n up to a power of two (min 1).
func nextPow2(n int) int {
	p := 1
	for p < n {
		p <<= 1
	}
	return p
}

func newMetrics(maxBatch, window int) *metrics {
	// Size shard and stripe counts to the host: enough to spread the
	// visible parallelism, clamped so snapshot aggregation stays cheap.
	shards := nextPow2(runtime.GOMAXPROCS(0))
	if shards < 4 {
		shards = 4
	}
	if shards > 64 {
		shards = 64
	}
	stripes := shards
	per := (window + stripes - 1) / stripes
	if per < 1 {
		per = 1
	}
	m := &metrics{
		shards:     make([]counterShard, shards),
		shardMask:  uint64(shards - 1),
		stripes:    make([]latStripe, stripes),
		stripeMask: uint64(stripes - 1),
		batchHist:  make([]atomic.Uint64, maxBatch),
	}
	for i := range m.stripes {
		m.stripes[i].buf = make([]float64, 0, per)
	}
	return m
}

// inc adds 1 to counter c on the shard picked by hint.
func (m *metrics) inc(hint uint64, c counterIdx) {
	m.shards[hint&m.shardMask].c[c].Add(1)
}

// addN adds n to counter c on the shard picked by hint.
func (m *metrics) addN(hint uint64, c counterIdx, n uint64) {
	m.shards[hint&m.shardMask].c[c].Add(n)
}

// sum aggregates counter c across shards (snapshot path only).
func (m *metrics) sum(c counterIdx) uint64 {
	var t uint64
	for i := range m.shards {
		t += m.shards[i].c[c].Load()
	}
	return t
}

func (m *metrics) observeBatch(size int) {
	m.batches.Add(1)
	if size >= 1 && size <= len(m.batchHist) {
		m.batchHist[size-1].Add(1)
	}
}

func (m *metrics) observeLatency(hint uint64, d time.Duration) {
	us := float64(d) / float64(time.Microsecond)
	st := &m.stripes[hint&m.stripeMask]
	st.mu.Lock()
	if len(st.buf) < cap(st.buf) {
		st.buf = append(st.buf, us)
	} else {
		st.buf[st.next] = us
		st.next = (st.next + 1) % len(st.buf)
	}
	st.mu.Unlock()
}

// model returns (creating if needed) the counters for one variant string.
func (m *metrics) model(name string) *modelCounters {
	if mc, ok := m.perModel.Load(name); ok {
		return mc.(*modelCounters)
	}
	mc, _ := m.perModel.LoadOrStore(name, &modelCounters{})
	return mc.(*modelCounters)
}

// tenant returns (creating if needed) the counters for one tenant,
// redirecting to the shared overflow bucket once maxTenantStats distinct
// tenants exist.
func (m *metrics) tenant(name string) *tenantCounters {
	if tc, ok := m.perTenant.Load(name); ok {
		return tc.(*tenantCounters)
	}
	if m.tenants.Load() >= maxTenantStats && name != overflowTenant {
		return m.tenant(overflowTenant)
	}
	tc, loaded := m.perTenant.LoadOrStore(name, &tenantCounters{})
	if !loaded {
		m.tenants.Add(1)
	}
	return tc.(*tenantCounters)
}

// tenantCompleted attributes one completion (cache hit, coalesced share,
// or batch execution) with its latency, and the degraded flag when the
// fallback variant served it.
func (m *metrics) tenantCompleted(tenant string, d time.Duration, degraded bool) {
	tc := m.tenant(tenant)
	tc.completed.Add(1)
	if degraded {
		tc.degraded.Add(1)
	}
	us := float64(d) / float64(time.Microsecond)
	tc.mu.Lock()
	if len(tc.lat) < tenantLatWindow {
		tc.lat = append(tc.lat, us)
	} else {
		tc.lat[tc.next] = us
		tc.next = (tc.next + 1) % tenantLatWindow
	}
	tc.mu.Unlock()
}

func (m *metrics) tenantFailed(tenant string)   { m.tenant(tenant).failed.Add(1) }
func (m *metrics) tenantShed(tenant string)     { m.tenant(tenant).shed.Add(1) }
func (m *metrics) tenantRejected(tenant string) { m.tenant(tenant).rejected.Add(1) }

// modelCompleted attributes n completed requests (with their summed
// admission-to-completion latency) to the model that served them.
func (m *metrics) modelCompleted(model string, n int, latSumUS float64) {
	if model == "" {
		return
	}
	mc := m.model(model)
	mc.completed.Add(uint64(n))
	addFloat(&mc.latSumUS, latSumUS)
}

// modelFault attributes one failed execution to the lane's variant,
// classifying panics and watchdog abandonments.
func (m *metrics) modelFault(variant string, err error) {
	if variant == "" {
		return
	}
	mc := m.model(variant)
	switch {
	case errors.Is(err, ErrBackendPanic):
		mc.panics.Add(1)
	case errors.Is(err, ErrWatchdog):
		mc.watchdogs.Add(1)
	}
}

// modelFailed attributes n terminally failed requests to the lane's variant.
func (m *metrics) modelFailed(variant string, n int) {
	if variant == "" {
		return
	}
	m.model(variant).failed.Add(uint64(n))
}

// Snapshot is a point-in-time view of the serving layer, shaped for the
// /metricsz endpoint.
type Snapshot struct {
	UptimeSeconds float64 `json:"uptime_seconds"`

	// Admission counters.
	Accepted        uint64 `json:"accepted"`
	Completed       uint64 `json:"completed"`
	Failed          uint64 `json:"failed"`
	RejectedFull    uint64 `json:"rejected_queue_full"`
	RejectedClosed  uint64 `json:"rejected_shutting_down"`
	RejectedRoute   uint64 `json:"rejected_unroutable"`
	RejectedShape   uint64 `json:"rejected_bad_shape"`
	RejectedBreaker uint64 `json:"rejected_breaker_open"`
	ShedExpired     uint64 `json:"shed_deadline_expired"`
	ShedCancelled   uint64 `json:"shed_cancelled"`

	// Fault-tolerance counters: recovered backend panics, watchdog-
	// abandoned executions, quarantine bisection retries, requests failed
	// in isolation as the proven poison, latency-SLO breaches, breaker
	// trips, traffic rerouted to / completed on the quantized fallback,
	// and cached variants evicted after a panic or hang.
	PanicsRecovered  uint64 `json:"panics_recovered"`
	WatchdogTimeouts uint64 `json:"watchdog_timeouts"`
	QuarantineRetry  uint64 `json:"quarantine_retries"`
	Quarantined      uint64 `json:"quarantined_poison"`
	SLOBreaches      uint64 `json:"slo_breaches"`
	BreakerOpens     uint64 `json:"breaker_opens"`
	DegradedRouted   uint64 `json:"degraded_routed"`
	DegradedServed   uint64 `json:"degraded_served"`
	VariantEvictions uint64 `json:"variant_evictions"`

	// Zero-contention request path: requests served straight from the
	// content-addressed result cache, requests that missed it, followers
	// served by a coalesced leader's single execution, and followers that
	// re-executed because their leader failed (a poisoned leader must
	// never fail its followers without re-execution).
	ResultCacheHits   uint64 `json:"result_cache_hits"`
	ResultCacheMisses uint64 `json:"result_cache_misses"`
	Coalesced         uint64 `json:"coalesced"`
	CoalescedRetried  uint64 `json:"coalesced_retried"`

	// Invalidation behaviour: admissions refused because their exact
	// content is negative-cached as proven poison, and result-cache entries
	// reclaimed immediately by a demoted version's artifact sweep.
	QuarantineBlocked uint64 `json:"quarantine_blocked,omitempty"`
	ArtifactSweeps    uint64 `json:"artifact_sweep_entries,omitempty"`

	// Multi-tenant admission: requests refused by a tenant's token-bucket
	// budget (HTTP 429 + Retry-After) and by the weighted queue-share
	// guard (a tenant at its reserved share of QueueCap while others'
	// slots stay protected).
	RejectedBudget uint64 `json:"rejected_tenant_budget,omitempty"`
	RejectedShare  uint64 `json:"rejected_tenant_share,omitempty"`

	// ResultCache surfaces the content-addressed detection cache's own
	// occupancy and churn when the cache is enabled (nil otherwise);
	// ResultCacheHitRate is Hits/(Hits+Misses) over its lifetime.
	// ReplicatedHitRate is the share of cache hits served from the hot
	// replica tier's lock-free table (hot_hits/hits; zero when the tier is
	// disabled) — the fraction of the read path that touched no mutex.
	ResultCache        *rcache.Stats `json:"result_cache,omitempty"`
	ResultCacheHitRate float64       `json:"result_cache_hit_rate,omitempty"`
	ReplicatedHitRate  float64       `json:"replicated_hit_rate,omitempty"`

	// Breakers lists every (variant, task) lane's circuit-breaker state.
	Breakers []LaneBreaker `json:"breakers,omitempty"`

	// QueueDepth is the number of admitted requests waiting in lanes.
	QueueDepth int `json:"queue_depth"`

	// ThroughputRPS is completed requests per second of uptime.
	ThroughputRPS float64 `json:"throughput_rps"`

	// Latency percentiles over the recent window, microseconds.
	LatencyP50US float64 `json:"latency_p50_us"`
	LatencyP95US float64 `json:"latency_p95_us"`
	LatencyP99US float64 `json:"latency_p99_us"`

	// Batching behaviour: total batches, mean executed batch size, and the
	// batch-size histogram (index i counts batches of size i+1).
	Batches   uint64   `json:"batches"`
	MeanBatch float64  `json:"mean_batch"`
	BatchHist []uint64 `json:"batch_hist"`

	// Cache surfaces the scheduler's model-cache stats when the backend
	// exposes them (nil otherwise); CacheHitRate is Hits/(Hits+Misses).
	Cache        *sched.CacheStats `json:"cache,omitempty"`
	CacheHitRate float64           `json:"cache_hit_rate"`

	// PerModel attributes completions, failures, and faults to the exact
	// model variant (versioned artifact ID) that executed them, sorted by
	// variant string. After a bad publish, the demoted version's panics and
	// the rolled-back version's completions appear side by side here.
	PerModel []ModelStats `json:"per_model,omitempty"`

	// PerTenant attributes completions, failures, sheds, degraded serves,
	// rejections, and a recent-window p99 to each tenant, sorted by tenant
	// ID. This is the observable half of tenant isolation: one tenant's
	// poison storm shows up as that tenant's failures and rejections while
	// the others' rows stay clean.
	PerTenant []TenantStats `json:"per_tenant,omitempty"`

	// Registry surfaces publish/rollback/demotion counters when the
	// backend exposes a versioned model registry (nil otherwise).
	Registry *registry.Stats `json:"registry,omitempty"`
}

// TenantStats is one tenant's attribution in a Snapshot.
type TenantStats struct {
	// Tenant is the tenant ID ("default" for unattributed requests,
	// "~overflow" aggregating tenants beyond the attribution cap).
	Tenant    string `json:"tenant"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed,omitempty"`
	// Shed counts this tenant's requests shed while queued (cancelled or
	// deadline-expired); Degraded its requests served on the fallback
	// variant; Rejected its admissions refused by budget or queue share.
	Shed     uint64 `json:"shed,omitempty"`
	Degraded uint64 `json:"degraded,omitempty"`
	Rejected uint64 `json:"rejected,omitempty"`
	// LatencyP99US is the p99 over the tenant's recent latency window,
	// microseconds.
	LatencyP99US float64 `json:"latency_p99_us,omitempty"`
}

// ModelStats is one variant's per-version attribution in a Snapshot.
type ModelStats struct {
	// Model is the variant string — a full versioned artifact ID for the
	// pipeline backend.
	Model     string `json:"model"`
	Completed uint64 `json:"completed"`
	Failed    uint64 `json:"failed,omitempty"`
	Panics    uint64 `json:"panics,omitempty"`
	Watchdogs uint64 `json:"watchdogs,omitempty"`
	// MeanLatencyUS is the mean admission-to-completion latency of this
	// variant's completed requests, microseconds.
	MeanLatencyUS float64 `json:"mean_latency_us,omitempty"`
}

func (m *metrics) snapshot(uptime time.Duration, queueDepth int) Snapshot {
	snap := Snapshot{
		UptimeSeconds:     uptime.Seconds(),
		Accepted:          m.sum(cAccepted),
		Completed:         m.sum(cCompleted),
		Failed:            m.sum(cFailed),
		RejectedFull:      m.sum(cRejectedFull),
		RejectedClosed:    m.sum(cRejectedClosed),
		RejectedRoute:     m.sum(cRejectedRoute),
		RejectedShape:     m.sum(cRejectedShape),
		RejectedBreaker:   m.sum(cRejectedBreaker),
		ShedExpired:       m.sum(cShedExpired),
		ShedCancelled:     m.sum(cShedCancelled),
		PanicsRecovered:   m.sum(cPanics),
		WatchdogTimeouts:  m.sum(cWatchdogs),
		QuarantineRetry:   m.sum(cRetries),
		Quarantined:       m.sum(cQuarantined),
		SLOBreaches:       m.sum(cSLOBreaches),
		BreakerOpens:      m.sum(cBreakerOpens),
		DegradedRouted:    m.sum(cDegradedRouted),
		DegradedServed:    m.sum(cDegradedServed),
		VariantEvictions:  m.sum(cVariantEvictions),
		ResultCacheHits:   m.sum(cCacheHits),
		ResultCacheMisses: m.sum(cCacheMisses),
		Coalesced:         m.sum(cCoalesced),
		CoalescedRetried:  m.sum(cCoalescedRetried),
		QuarantineBlocked: m.sum(cQuarantineBlocked),
		ArtifactSweeps:    m.sum(cArtifactSweeps),
		RejectedBudget:    m.sum(cRejectedBudget),
		RejectedShare:     m.sum(cRejectedShare),
		QueueDepth:        queueDepth,
		Batches:           m.batches.Load(),
		BatchHist:         make([]uint64, len(m.batchHist)),
	}
	for i := range m.batchHist {
		snap.BatchHist[i] = m.batchHist[i].Load()
	}

	m.perModel.Range(func(k, v any) bool {
		mc := v.(*modelCounters)
		ms := ModelStats{
			Model:     k.(string),
			Completed: mc.completed.Load(),
			Failed:    mc.failed.Load(),
			Panics:    mc.panics.Load(),
			Watchdogs: mc.watchdogs.Load(),
		}
		if ms.Completed > 0 {
			ms.MeanLatencyUS = math.Float64frombits(mc.latSumUS.Load()) / float64(ms.Completed)
		}
		snap.PerModel = append(snap.PerModel, ms)
		return true
	})
	sort.Slice(snap.PerModel, func(i, j int) bool { return snap.PerModel[i].Model < snap.PerModel[j].Model })

	m.perTenant.Range(func(k, v any) bool {
		tc := v.(*tenantCounters)
		ts := TenantStats{
			Tenant:    k.(string),
			Completed: tc.completed.Load(),
			Failed:    tc.failed.Load(),
			Shed:      tc.shed.Load(),
			Degraded:  tc.degraded.Load(),
			Rejected:  tc.rejected.Load(),
		}
		tc.mu.Lock()
		tlat := append([]float64(nil), tc.lat...)
		tc.mu.Unlock()
		if len(tlat) > 0 {
			sort.Float64s(tlat)
			ts.LatencyP99US = percentile(tlat, 0.99)
		}
		snap.PerTenant = append(snap.PerTenant, ts)
		return true
	})
	sort.Slice(snap.PerTenant, func(i, j int) bool { return snap.PerTenant[i].Tenant < snap.PerTenant[j].Tenant })

	// Copy the latency window stripe by stripe — each stripe's lock is held
	// only for its own copy, never across the sort, and never all at once.
	var lat []float64
	for i := range m.stripes {
		st := &m.stripes[i]
		st.mu.Lock()
		lat = append(lat, st.buf...)
		st.mu.Unlock()
	}

	if uptime > 0 {
		snap.ThroughputRPS = float64(snap.Completed) / uptime.Seconds()
	}
	if snap.Batches > 0 {
		// batches counts successfully executed batches, completed their
		// member requests. Cache hits and coalesced followers never ride a
		// batch, so the mean is over batch-executed completions only (the
		// guard covers transient cross-shard read skew during load).
		if skip := snap.ResultCacheHits + snap.Coalesced; snap.Completed >= skip {
			snap.MeanBatch = float64(snap.Completed-skip) / float64(snap.Batches)
		}
	}
	if len(lat) > 0 {
		sort.Float64s(lat)
		snap.LatencyP50US = percentile(lat, 0.50)
		snap.LatencyP95US = percentile(lat, 0.95)
		snap.LatencyP99US = percentile(lat, 0.99)
	}
	if total := snap.ResultCacheHits + snap.ResultCacheMisses; total > 0 {
		snap.ResultCacheHitRate = float64(snap.ResultCacheHits) / float64(total)
	}
	return snap
}

// percentile reads the q-quantile from sorted by nearest rank.
func percentile(sorted []float64, q float64) float64 {
	if len(sorted) == 0 {
		return 0
	}
	i := int(q * float64(len(sorted)))
	if i >= len(sorted) {
		i = len(sorted) - 1
	}
	return sorted[i]
}
