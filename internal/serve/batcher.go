package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"itask/internal/rcache"
	"itask/internal/tensor"
)

// pending is one admitted request waiting in a lane or executing.
type pending struct {
	image    *tensor.Tensor
	task     string
	deadline time.Time
	enq      time.Time
	// hint spreads this request's metrics updates across counter shards
	// (see metrics); stable for the request's lifetime.
	hint uint64
	// key is the content-addressed cache key (haveKey guards validity; the
	// fast path computes it only when the cache or coalescing is enabled).
	// key.Artifact doubles as the memoized routing decision.
	key     rcache.Key
	haveKey bool
	// flight is non-nil on a singleflight leader; its terminal delivery
	// resolves the flight exactly once (see deliver).
	flight *flight
	// degraded is the non-empty degradation reason when admission rerouted
	// this request to the fallback variant (see Result.Degraded).
	degraded string
	// probeKey, when non-empty, is the lane key whose half-open probe slot
	// this request holds. The slot is consumed once the request's first
	// execution outcome reaches the breaker; until then, an enqueue failure
	// or shedding before invoke must release it (health.releaseProbe), or
	// the lane stays half-open with a probe that never runs and denies all
	// traffic forever. Written at admission, then touched only by the one
	// worker executing the request's batch.
	probeKey string
	// cancelled is set by Detect when its context ends before the outcome
	// arrives; execute sheds cancelled requests instead of running them.
	cancelled atomic.Bool
	// attempts counts quarantine re-executions, bounded by RetryBudget.
	// Only the single worker goroutine running the request's batch touches
	// it (quarantine recursion stays on that worker's stack).
	attempts int
	done     chan Outcome // buffered(1): delivery never blocks a worker
}

// batch is a flushed micro-batch bound for the worker pool.
type batch struct {
	variant string
	task    string
	items   []*pending
}

// lane coalesces admitted requests that share a (variant, task) key. The
// key includes the task (not just the model variant) because the pipeline's
// post-inference knowledge-graph filtering is task-specific: two tasks
// served by the same generalist still decode against different priors.
type lane struct {
	variant string
	task    string
	items   []*pending
	// gen invalidates flush timers armed for a previous filling of this
	// lane: takeLocked bumps it, so a stale time.AfterFunc finds a
	// different generation and does nothing.
	gen uint64
}

// state is the mutex-guarded queue/batcher core of the Server.
type state struct {
	mu    sync.Mutex
	lanes map[string]*lane
	// queued counts admitted requests not yet handed to a worker — both
	// those waiting in lanes and those in flushed batches still queuing
	// for the worker channel. It is decremented only when a batch lands on
	// batchCh, so QueueCap genuinely bounds pending work even when every
	// worker is busy and dispatches are blocked.
	queued int
	closed bool

	// dispatchWG counts batches taken from lanes but not yet handed to
	// batchCh; Shutdown waits for it before closing the channel.
	dispatchWG sync.WaitGroup
	workerWG   sync.WaitGroup
}

func newState() *state {
	return &state{lanes: map[string]*lane{}}
}

// takeLocked empties a lane into a batch (nil when the lane is empty) and
// bumps its generation. Caller holds st.mu.
func (st *state) takeLocked(ln *lane) *batch {
	if len(ln.items) == 0 {
		return nil
	}
	b := &batch{variant: ln.variant, task: ln.task, items: ln.items}
	ln.items = nil
	ln.gen++
	return b
}

// enqueue admits p into the lane for (variant, task), flushing the lane if
// it reached MaxBatch and arming the BatchDelay flush timer when p is the
// first occupant.
func (s *Server) enqueue(variant, task string, p *pending) error {
	st := s.st
	key := laneKey(variant, task)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		s.m.inc(p.hint, cRejectedClosed)
		return ErrShuttingDown
	}
	if st.queued >= s.cfg.QueueCap {
		st.mu.Unlock()
		s.m.inc(p.hint, cRejectedFull)
		return ErrQueueFull
	}
	st.queued++
	ln := st.lanes[key]
	if ln == nil {
		ln = &lane{variant: variant, task: task}
		st.lanes[key] = ln
	}
	ln.items = append(ln.items, p)
	var ready *batch
	switch {
	case len(ln.items) >= s.cfg.MaxBatch || s.cfg.BatchDelay == 0:
		ready = st.takeLocked(ln)
	case len(ln.items) == 1:
		gen := ln.gen
		time.AfterFunc(s.cfg.BatchDelay, func() { s.flushLane(key, gen) })
	}
	if ready != nil {
		st.dispatchWG.Add(1)
	}
	st.mu.Unlock()
	if ready != nil {
		// Async so a submitter that happens to trigger the flush is not
		// blocked waiting for a free worker; the batch stays counted in
		// queued until a worker accepts it, so QueueCap still bounds the
		// number of these goroutines.
		go s.dispatch(ready)
	}
	return nil
}

// flushLane is the BatchDelay timer callback: it flushes the lane if it
// still holds the generation the timer was armed for.
func (s *Server) flushLane(key string, gen uint64) {
	st := s.st
	st.mu.Lock()
	ln := st.lanes[key]
	if ln == nil || ln.gen != gen || st.closed {
		st.mu.Unlock()
		return
	}
	b := st.takeLocked(ln)
	if b != nil {
		st.dispatchWG.Add(1)
	}
	st.mu.Unlock()
	if b != nil {
		go s.dispatch(b)
	}
}

// dispatch hands a flushed batch to the worker pool, blocking while all
// workers are busy and the channel is full — that is the backpressure that
// keeps total in-flight work bounded by QueueCap + Workers·(1+MaxBatch).
// Only once a worker lane accepts the batch do its requests stop counting
// against QueueCap.
func (s *Server) dispatch(b *batch) {
	defer s.st.dispatchWG.Done()
	s.batchCh <- b
	s.st.mu.Lock()
	s.st.queued -= len(b.items)
	s.st.mu.Unlock()
}

// worker drains flushed batches until the channel closes at shutdown. All
// shedding, panic isolation, quarantine, and breaker accounting happens in
// execute (exec.go).
func (s *Server) worker() {
	defer s.st.workerWG.Done()
	for b := range s.batchCh {
		s.execute(b.variant, b.task, b.items)
	}
}
