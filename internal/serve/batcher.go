package serve

import (
	"sync"
	"sync/atomic"
	"time"

	"itask/internal/fair"
	"itask/internal/rcache"
	"itask/internal/tensor"
)

// pending is one admitted request waiting in a lane or executing.
type pending struct {
	image    *tensor.Tensor
	task     string
	tenant   string
	deadline time.Time
	enq      time.Time
	// hint spreads this request's metrics updates across counter shards
	// (see metrics); stable for the request's lifetime.
	hint uint64
	// key is the content-addressed cache key (haveKey guards validity; the
	// fast path computes it only when the cache or coalescing is enabled).
	// key.Artifact doubles as the memoized routing decision.
	key     rcache.Key
	haveKey bool
	// flight is non-nil on a singleflight leader; its terminal delivery
	// resolves the flight exactly once (see deliver).
	flight *flight
	// degraded is the non-empty degradation reason when admission rerouted
	// this request to the fallback variant (see Result.Degraded).
	degraded string
	// probeKey, when non-empty, is the lane key whose half-open probe slot
	// this request holds. The slot is consumed once the request's first
	// execution outcome reaches the breaker; until then, an enqueue failure
	// or shedding before invoke must release it (health.releaseProbe), or
	// the lane stays half-open with a probe that never runs and denies all
	// traffic forever. Written at admission, then touched only by the one
	// worker executing the request's batch.
	probeKey string
	// cancelled is set by Detect when its context ends before the outcome
	// arrives; execute sheds cancelled requests instead of running them.
	cancelled atomic.Bool
	// attempts counts quarantine re-executions, bounded by RetryBudget.
	// Only the single worker goroutine running the request's batch touches
	// it (quarantine recursion stays on that worker's stack).
	attempts int
	done     chan Outcome // buffered(1): delivery never blocks a worker
}

// lane coalesces admitted requests that share a (variant, task) key. The
// key includes the task (not just the model variant) because the pipeline's
// post-inference knowledge-graph filtering is task-specific: two tasks
// served by the same generalist still decode against different priors.
//
// Inside a lane, requests wait in a weighted-fair queue of per-tenant
// subqueues rather than one FIFO: when a worker takes a batch, fair.Queue
// interleaves tenants by deficit round robin, so a tenant flooding the lane
// gets at most its weighted share of each batch's slots while other
// tenants have work waiting.
type lane struct {
	variant string
	task    string
	q       *fair.Queue[*pending]
	// ready marks the lane as sitting in the state's ready list, waiting
	// for a worker to take a batch from it.
	ready bool
	// gen invalidates flush timers armed for a previous filling of this
	// lane: the worker taking a batch bumps it, so a stale time.AfterFunc
	// finds a different generation and does nothing.
	gen uint64
}

// state is the mutex-guarded queue/batcher core of the Server.
//
// The batcher is pull-model: admitted requests stay in their lane's fair
// queue until a worker takes a batch, so batch formation — the moment
// tenant interleaving happens — is as late as possible. (The previous
// design flushed lanes eagerly into per-batch dispatch goroutines blocked
// on a channel; the backlog then sat FIFO in blocked goroutines where no
// fairness policy could reach it.) A lane becomes "ready" when it holds a
// full batch, when its BatchDelay expires, or at shutdown; workers wait on
// cond for ready lanes and serve them in FIFO order.
type state struct {
	mu   sync.Mutex
	cond *sync.Cond // signalled when a lane becomes ready or the server closes
	lanes map[string]*lane
	// readyQ is the FIFO of lanes with a batch ready to take. Lane-level
	// FIFO keeps cross-lane service fair too: a busy lane re-marks itself
	// at the tail, it cannot monopolize the workers.
	readyQ []*lane
	// queued counts admitted requests not yet taken by a worker; QueueCap
	// bounds it. queuedBy splits the same count per tenant for the
	// weighted queue-share guard (see Server.enqueue).
	queued   int
	queuedBy map[string]int
	closed   bool

	workerWG sync.WaitGroup
}

func newState() *state {
	st := &state{lanes: map[string]*lane{}, queuedBy: map[string]int{}}
	st.cond = sync.NewCond(&st.mu)
	return st
}

// markReadyLocked puts ln on the ready list and wakes one worker. Caller
// holds st.mu.
func (st *state) markReadyLocked(ln *lane) {
	if ln.ready {
		return
	}
	ln.ready = true
	st.readyQ = append(st.readyQ, ln)
	st.cond.Signal()
}

// tenantQueueCapLocked is the weighted share of QueueCap tenant may occupy.
// The share is computed against the weights of every tenant that is either
// configured (present in Config.TenantWeights) or currently occupying queue
// slots — so a tenant alone on an unconfigured server uses the whole queue
// (work-conserving), while on a server with configured tenants each one's
// slots are reserved even across its idle moments and a flooding tenant can
// never push the queue to a state that rejects the others. The floor of one
// MaxBatch keeps a tiny-share tenant able to form a full batch. Caller
// holds st.mu.
func (s *Server) tenantQueueCapLocked(tenant string) int {
	st := s.st
	w := func(t string) int {
		if wt, ok := s.cfg.TenantWeights[t]; ok && wt > 0 {
			return wt
		}
		return fair.DefaultWeight
	}
	total := w(tenant)
	for t := range s.cfg.TenantWeights {
		if t != tenant {
			total += w(t)
		}
	}
	for t := range st.queuedBy {
		if _, configured := s.cfg.TenantWeights[t]; !configured && t != tenant {
			total += w(t)
		}
	}
	share := s.cfg.QueueCap * w(tenant) / total
	if share < s.cfg.MaxBatch {
		share = s.cfg.MaxBatch
	}
	if share > s.cfg.QueueCap {
		share = s.cfg.QueueCap
	}
	return share
}

// enqueue admits p into the lane for (variant, task), marking the lane
// ready for a worker when it holds a full batch (or BatchDelay is zero)
// and arming the BatchDelay flush timer when p is the lane's first
// occupant.
func (s *Server) enqueue(variant, task string, p *pending) error {
	st := s.st
	key := laneKey(variant, task)
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		s.m.inc(p.hint, cRejectedClosed)
		return ErrShuttingDown
	}
	if st.queued >= s.cfg.QueueCap {
		st.mu.Unlock()
		s.m.inc(p.hint, cRejectedFull)
		s.m.tenantRejected(p.tenant)
		return ErrQueueFull
	}
	if st.queuedBy[p.tenant] >= s.tenantQueueCapLocked(p.tenant) {
		st.mu.Unlock()
		s.m.inc(p.hint, cRejectedShare)
		s.m.tenantRejected(p.tenant)
		return ErrQueueFull
	}
	st.queued++
	st.queuedBy[p.tenant]++
	ln := st.lanes[key]
	if ln == nil {
		ln = &lane{variant: variant, task: task, q: fair.NewQueue[*pending](s.cfg.TenantWeights)}
		st.lanes[key] = ln
	}
	wasEmpty := ln.q.Len() == 0
	ln.q.Push(p.tenant, p)
	switch {
	case ln.q.Len() >= s.cfg.MaxBatch || s.cfg.BatchDelay == 0:
		st.markReadyLocked(ln)
	case wasEmpty && !ln.ready:
		gen := ln.gen
		time.AfterFunc(s.cfg.BatchDelay, func() { s.flushLane(key, gen) })
	}
	st.mu.Unlock()
	return nil
}

// flushLane is the BatchDelay timer callback: it readies the lane if it
// still holds the generation the timer was armed for.
func (s *Server) flushLane(key string, gen uint64) {
	st := s.st
	st.mu.Lock()
	ln := st.lanes[key]
	if ln != nil && ln.gen == gen && !st.closed && ln.q.Len() > 0 {
		st.markReadyLocked(ln)
	}
	st.mu.Unlock()
}

// worker pulls batches from ready lanes until shutdown drains the last
// one. Taking a batch is where fairness bites: fair.Queue.PopMax
// interleaves the lane's tenants by deficit round robin, and only now do
// the taken requests stop counting against QueueCap. All shedding, panic
// isolation, quarantine, and breaker accounting happens in execute
// (exec.go).
func (s *Server) worker() {
	st := s.st
	defer st.workerWG.Done()
	st.mu.Lock()
	for {
		for len(st.readyQ) == 0 && !st.closed {
			st.cond.Wait()
		}
		if len(st.readyQ) == 0 {
			// Closed and fully drained.
			st.mu.Unlock()
			return
		}
		ln := st.readyQ[0]
		st.readyQ = st.readyQ[1:]
		ln.ready = false
		items := ln.q.PopMax(s.cfg.MaxBatch)
		ln.gen++
		st.queued -= len(items)
		for _, p := range items {
			if st.queuedBy[p.tenant]--; st.queuedBy[p.tenant] <= 0 {
				delete(st.queuedBy, p.tenant)
			}
		}
		if ln.q.Len() > 0 {
			// Leftovers (more than MaxBatch was queued): either they
			// already fill the next batch, or they wait a fresh
			// BatchDelay for company — the added wait is bounded by one
			// extra BatchDelay since the lane last had a full batch.
			if ln.q.Len() >= s.cfg.MaxBatch || s.cfg.BatchDelay == 0 || st.closed {
				st.markReadyLocked(ln)
			} else {
				key := laneKey(ln.variant, ln.task)
				gen := ln.gen
				time.AfterFunc(s.cfg.BatchDelay, func() { s.flushLane(key, gen) })
			}
		}
		st.mu.Unlock()
		if len(items) > 0 {
			s.execute(ln.variant, ln.task, items)
		}
		st.mu.Lock()
	}
}
