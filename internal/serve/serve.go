// Package serve is iTask's online serving layer: it accepts concurrent
// detection requests, routes them through the situational scheduler's model
// selection, coalesces requests that target the same model variant into
// micro-batches (flushing on batch-size or a wait deadline), and executes
// the batches on a bounded worker pool.
//
// The design is queue → batcher → worker pool:
//
//   - Admission: a bounded queue with backpressure. Requests beyond
//     QueueCap are rejected immediately with ErrQueueFull (reject-with-
//     reason rather than unbounded growth), requests whose deadline has
//     already passed are refused, and a draining server refuses everything
//     with ErrShuttingDown.
//   - Batching: per-(variant, task) lanes coalesce compatible requests. A
//     lane flushes when it reaches MaxBatch or when its oldest request has
//     waited BatchDelay — bounded added latency in exchange for the
//     weight-stationary amortization batched execution gets on the
//     accelerator (see hwsim.SimulateAccelBatch).
//   - Execution: Workers goroutines drain flushed batches. Requests whose
//     deadline passed while queued are shed at execution time (their slot
//     is not wasted on work nobody is waiting for).
//   - Shutdown: Shutdown flushes every lane, stops admissions, drains
//     in-flight batches, and waits for the workers to exit.
//
// All latency accounting is wall-clock from admission, and the server keeps
// a metrics snapshot (p50/p95/p99 latency, throughput, batch-size
// histogram, queue depth, shed/reject counts, model-cache hit rate) for the
// /metricsz endpoint of cmd/itask-serve.
package serve

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Sentinel errors returned by the admission path.
var (
	// ErrQueueFull reports that the admission queue is at QueueCap; the
	// caller should back off (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrShuttingDown reports that the server is draining and refuses new
	// work (HTTP 503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrDeadlineExceeded reports that the request's deadline expired
	// before execution — either refused at admission or shed while queued
	// (HTTP 504).
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before execution")
)

// Config sizes the serving layer.
type Config struct {
	// Workers is the number of inference workers draining batches.
	Workers int
	// MaxBatch caps the size of a coalesced micro-batch.
	MaxBatch int
	// BatchDelay is how long the first request of a lane may wait for
	// company before the lane is flushed anyway. Zero flushes on every
	// submission (no added latency, batching only under bursts already in
	// the queue).
	BatchDelay time.Duration
	// QueueCap bounds requests admitted but not yet dispatched to a
	// worker; beyond it submissions fail fast with ErrQueueFull.
	QueueCap int
	// DefaultTimeout is applied as the deadline of requests that carry
	// none. Zero means no implicit deadline.
	DefaultTimeout time.Duration
	// LatencyWindow is how many recent request latencies the metrics
	// snapshot computes percentiles over.
	LatencyWindow int
}

// DefaultConfig returns a configuration sized for the laptop-scale models:
// two workers, batches of up to 8, and a 2ms coalescing window.
func DefaultConfig() Config {
	return Config{
		Workers:       2,
		MaxBatch:      8,
		BatchDelay:    2 * time.Millisecond,
		QueueCap:      256,
		LatencyWindow: 4096,
	}
}

// Validate rejects configurations that cannot serve: a server with zero
// workers would admit requests and never run them.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("serve: Workers must be positive, got %d", c.Workers)
	case c.MaxBatch <= 0:
		return fmt.Errorf("serve: MaxBatch must be positive, got %d", c.MaxBatch)
	case c.QueueCap < c.MaxBatch:
		return fmt.Errorf("serve: QueueCap %d below MaxBatch %d", c.QueueCap, c.MaxBatch)
	case c.BatchDelay < 0:
		return fmt.Errorf("serve: negative BatchDelay %v", c.BatchDelay)
	case c.DefaultTimeout < 0:
		return fmt.Errorf("serve: negative DefaultTimeout %v", c.DefaultTimeout)
	case c.LatencyWindow <= 0:
		return fmt.Errorf("serve: LatencyWindow must be positive, got %d", c.LatencyWindow)
	}
	return nil
}

// Server is the serving layer. Create with New; all methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	backend Backend
	start   time.Time

	st *state

	batchCh chan *batch
	m       *metrics
}

// New validates the configuration and starts the worker pool. The returned
// server accepts requests immediately.
func New(b Backend, cfg Config) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:     cfg,
		backend: b,
		start:   time.Now(),
		st:      newState(),
		batchCh: make(chan *batch, cfg.Workers),
		m:       newMetrics(cfg.MaxBatch, cfg.LatencyWindow),
	}
	s.st.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit admits one request and returns the channel its outcome will be
// delivered on (buffered: the result is never lost if the caller walks
// away). Admission fails fast with ErrQueueFull, ErrShuttingDown,
// ErrDeadlineExceeded, or the backend's routing error.
func (s *Server) Submit(req Request) (<-chan Outcome, error) {
	now := time.Now()
	if req.Image == nil {
		return nil, fmt.Errorf("serve: nil image")
	}
	deadline := req.Deadline
	if deadline.IsZero() && s.cfg.DefaultTimeout > 0 {
		deadline = now.Add(s.cfg.DefaultTimeout)
	}
	if !deadline.IsZero() && !now.Before(deadline) {
		s.m.add(&s.m.shedExpired, 1)
		return nil, ErrDeadlineExceeded
	}
	variant, err := s.backend.Route(req.Task)
	if err != nil {
		s.m.add(&s.m.rejectedRoute, 1)
		return nil, err
	}
	p := &pending{
		image:    req.Image,
		deadline: deadline,
		enq:      now,
		done:     make(chan Outcome, 1),
	}
	if err := s.enqueue(variant, req.Task, p); err != nil {
		return nil, err
	}
	s.m.add(&s.m.accepted, 1)
	return p.done, nil
}

// Detect is the synchronous entry point: it submits the request and waits
// for its outcome or for ctx. A ctx deadline doubles as the request
// deadline when the request carries none.
func (s *Server) Detect(ctx context.Context, req Request) (Result, error) {
	if req.Deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			req.Deadline = d
		}
	}
	ch, err := s.Submit(req)
	if err != nil {
		return Result{}, err
	}
	select {
	case out := <-ch:
		return out.Res, out.Err
	case <-ctx.Done():
		return Result{}, ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return s.st.closed
}

// Shutdown stops admissions, flushes every lane, drains in-flight batches,
// and waits for the workers to exit (or for ctx, whichever first; on ctx
// expiry the drain keeps running in the background). Calling Shutdown on a
// draining server returns ErrShuttingDown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.st.mu.Lock()
	if s.st.closed {
		s.st.mu.Unlock()
		return ErrShuttingDown
	}
	s.st.closed = true
	var ready []*batch
	for _, ln := range s.st.lanes {
		if b := s.st.takeLocked(ln); b != nil {
			ready = append(ready, b)
		}
	}
	s.st.dispatchWG.Add(len(ready))
	s.st.mu.Unlock()

	for _, b := range ready {
		go s.dispatch(b)
	}
	done := make(chan struct{})
	go func() {
		s.st.dispatchWG.Wait()
		close(s.batchCh)
		s.st.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Snapshot returns the current metrics. See the Snapshot type for fields.
func (s *Server) Snapshot() Snapshot {
	s.st.mu.Lock()
	depth := s.st.queued
	s.st.mu.Unlock()
	snap := s.m.snapshot(time.Since(s.start), depth)
	if cs, ok := s.backend.(CacheStatser); ok {
		stats := cs.CacheStats()
		snap.Cache = &stats
		if total := stats.Hits + stats.Misses; total > 0 {
			snap.CacheHitRate = float64(stats.Hits) / float64(total)
		}
	}
	return snap
}
