// Package serve is iTask's online serving layer: it accepts concurrent
// detection requests, routes them through the situational scheduler's model
// selection, coalesces requests that target the same model variant into
// micro-batches (flushing on batch-size or a wait deadline), and executes
// the batches on a bounded worker pool.
//
// The design is queue → batcher → worker pool, wrapped in a fault-
// tolerance layer:
//
//   - Admission: a bounded queue with backpressure. Requests beyond
//     QueueCap are rejected immediately with ErrQueueFull (reject-with-
//     reason rather than unbounded growth), requests whose deadline has
//     already passed are refused, malformed input is refused with
//     ErrBadShape before it can reach a kernel, and a draining server
//     refuses everything with ErrShuttingDown.
//   - Fast path: with CacheBytes > 0, admission first consults a
//     content-addressed result cache keyed by (routed artifact version,
//     task, image digest) — identical frames from consecutive requests or
//     concurrent clients are answered without touching the queue, the
//     batcher, or a kernel, in zero allocations. With Coalesce, concurrent
//     duplicates that miss the cache collapse into one in-flight execution
//     (singleflight): the leader rides the normal path, followers wait for
//     its outcome, and a failed leader never fails a follower without
//     re-execution (see flight.go). Because the cache key pins the full
//     versioned artifact ID, a model publish or rollback invalidates stale
//     entries by construction.
//   - Batching: per-(variant, task) lanes coalesce compatible requests. A
//     lane flushes when it reaches MaxBatch or when its oldest request has
//     waited BatchDelay — bounded added latency in exchange for the
//     weight-stationary amortization batched execution gets on the
//     accelerator (see hwsim.SimulateAccelBatch).
//   - Execution: Workers goroutines drain flushed batches. Requests whose
//     deadline passed while queued are shed at execution time, every
//     backend call runs under recover (a kernel panic becomes a
//     *PanicError, never a crash) and under the Watchdog deadline, and a
//     failed batch is bisect-retried so only the poison request(s) fail
//     while their batch-mates succeed.
//   - Degradation: each (variant, task) lane has a circuit breaker.
//     Consecutive failures (including latency-SLO breaches) trip it open;
//     open lanes route new requests to the backend's fallback variant —
//     the paper's quantized generalist configuration — marked in
//     Result.Degraded, and heal through exponential-backoff half-open
//     probes.
//   - Shutdown: Shutdown flushes every lane, stops admissions, drains
//     in-flight batches, and waits for the workers to exit.
//
// All latency accounting is wall-clock from admission, and the server keeps
// a metrics snapshot (p50/p95/p99 latency, throughput, batch-size
// histogram, queue depth, shed/reject/fault counters, per-lane breaker
// states, model-cache hit rate) for the /metricsz endpoint of
// cmd/itask-serve.
package serve

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"sync/atomic"
	"time"

	"itask/internal/fair"
	"itask/internal/rcache"
)

// Sentinel errors returned by the admission and execution paths.
var (
	// ErrQueueFull reports that the admission queue is at QueueCap; the
	// caller should back off (HTTP 429).
	ErrQueueFull = errors.New("serve: admission queue full")
	// ErrShuttingDown reports that the server is draining and refuses new
	// work (HTTP 503).
	ErrShuttingDown = errors.New("serve: shutting down")
	// ErrDeadlineExceeded reports that the request's deadline expired
	// before execution — either refused at admission or shed while queued
	// (HTTP 504).
	ErrDeadlineExceeded = errors.New("serve: deadline exceeded before execution")
	// ErrBadShape reports that the request's image failed the backend's
	// shape validation at admission (HTTP 400). Input is rejected here so
	// it can never reach a panicking kernel inside a shared micro-batch.
	ErrBadShape = errors.New("serve: bad image shape")
	// ErrBackendPanic is the sentinel under every *PanicError: the backend
	// panicked while executing a batch and the server recovered (HTTP 500
	// for the isolated poison request).
	ErrBackendPanic = errors.New("serve: backend panicked")
	// ErrWatchdog reports that a backend execution exceeded the Watchdog
	// deadline and was abandoned (HTTP 504).
	ErrWatchdog = errors.New("serve: execution watchdog expired")
	// ErrBreakerOpen is the sentinel under every *BreakerOpenError: the
	// routed lane's circuit breaker is open and no healthy fallback exists
	// (HTTP 503 with Retry-After).
	ErrBreakerOpen = errors.New("serve: circuit breaker open")
	// ErrQuarantined reports that the request's exact content was recently
	// proven poison — it panicked or hung its kernel in isolation — and is
	// refused from the negative cache without re-execution until the entry's
	// short TTL lapses (HTTP 422). Quarantine verdicts are tenant-scoped:
	// only the tenant whose traffic earned the verdict is refused.
	ErrQuarantined = errors.New("serve: content quarantined as poison")
	// ErrTenantBudget is the sentinel under every *TenantBudgetError: the
	// request's tenant has exhausted its token-bucket admission budget
	// (HTTP 429 with Retry-After).
	ErrTenantBudget = errors.New("serve: tenant admission budget exhausted")
)

// TenantBudgetError reports a request rejected because its tenant spent its
// admission budget (Config.TenantRate/TenantBurst). It unwraps to
// ErrTenantBudget.
type TenantBudgetError struct {
	// Tenant is the over-budget tenant.
	Tenant string
	// RetryAfter estimates when the tenant's bucket next holds a token.
	RetryAfter time.Duration
}

func (e *TenantBudgetError) Error() string {
	return fmt.Sprintf("serve: tenant %q over admission budget (retry after %v)", e.Tenant, e.RetryAfter)
}

func (e *TenantBudgetError) Unwrap() error { return ErrTenantBudget }

// Config sizes the serving layer.
type Config struct {
	// Workers is the number of inference workers draining batches.
	Workers int
	// MaxBatch caps the size of a coalesced micro-batch.
	MaxBatch int
	// BatchDelay is how long the first request of a lane may wait for
	// company before the lane is flushed anyway. Zero flushes on every
	// submission (no added latency, batching only under bursts already in
	// the queue).
	BatchDelay time.Duration
	// QueueCap bounds requests admitted but not yet dispatched to a
	// worker; beyond it submissions fail fast with ErrQueueFull.
	QueueCap int
	// DefaultTimeout is applied as the deadline of requests that carry
	// none. Zero means no implicit deadline.
	DefaultTimeout time.Duration
	// LatencyWindow is how many recent request latencies the metrics
	// snapshot computes percentiles over.
	LatencyWindow int

	// Watchdog bounds a single backend execution: a batch still running
	// after it is abandoned and fails with ErrWatchdog. Zero disables the
	// watchdog.
	Watchdog time.Duration
	// RetryBudget is how many times one request may be re-executed during
	// quarantine bisection after a batch it rode in failed. Zero disables
	// quarantine: a failed batch fails all its requests. log2(MaxBatch)
	// retries suffice to fully isolate a single poison request.
	RetryBudget int
	// BreakerThreshold is how many consecutive failed executions trip a
	// (variant, task) lane's circuit breaker open. Zero disables the
	// breakers.
	BreakerThreshold int
	// BreakerBackoff is how long a freshly opened breaker refuses the lane
	// before admitting a half-open probe; each failed probe doubles it up
	// to BreakerMaxBackoff. Required when BreakerThreshold > 0.
	BreakerBackoff time.Duration
	// BreakerMaxBackoff caps the exponential backoff (defaults to
	// BreakerBackoff when smaller).
	BreakerMaxBackoff time.Duration
	// LatencySLO, when non-zero, marks successful executions slower than
	// it as breaker failures, so a lane that stops meeting its latency
	// objective degrades to the fallback variant like a failing one.
	LatencySLO time.Duration

	// CacheBytes, when positive, enables the content-addressed detection
	// result cache with this byte budget. Identical (artifact version,
	// task, image) requests are then served from memory without touching
	// the queue or a kernel. Zero disables the cache.
	CacheBytes int64
	// CacheTTL bounds result-cache entry lifetime (zero: entries live
	// until evicted by the byte budget). A TTL also bounds how old a
	// result a rollback can resurrect for the restored version.
	CacheTTL time.Duration
	// NegativeTTL, when positive (and CacheBytes > 0), enables the negative
	// cache: content quarantined as poison — it panicked or hung its kernel
	// in isolation — is refused with ErrQuarantined for this long instead
	// of re-executing (and re-panicking) on every arrival. Keep it short:
	// it also delays discovering that a rolled-back kernel fixed the
	// content.
	NegativeTTL time.Duration
	// CacheShards is the result cache's lock-stripe count (0 = auto).
	CacheShards int
	// Coalesce enables singleflight duplicate suppression: concurrent
	// requests with the same (artifact version, task, image digest) share
	// one backend execution instead of each riding the queue. Failure
	// semantics are per-request — see flight.go.
	Coalesce bool

	// HotThreshold, when positive (requires CacheBytes), enables the result
	// cache's hot replica tier: a digest read this many times within a decay
	// window is promoted to a lock-free replicated table, so a viral frame's
	// readers stop serializing on one cache-shard mutex. See rcache's hot
	// tier for the mechanism.
	HotThreshold int
	// HotDecay is the hot detector's decay window in arrivals (0 picks the
	// estimator default). The same knob paces demotion of replicas whose
	// traffic dried up.
	HotDecay int
	// HotBytes bounds the replica tier's memory, on top of CacheBytes
	// (replicas are copies). Zero picks CacheBytes/8.
	HotBytes int64

	// TenantWeights maps tenant ID -> DRR weight for weighted-fair batch
	// formation and the weighted queue-share guard. Unlisted tenants get
	// weight 1 (fair.DefaultWeight); requests that carry no tenant are the
	// DefaultTenant. Nil serves everyone as one tenant, which degenerates
	// to the pre-tenant FIFO behaviour.
	TenantWeights map[string]int
	// TenantRate, when positive, grants each tenant this many admitted
	// executions per second (token bucket, lazily refilled). Over-budget
	// requests fail fast with a *TenantBudgetError. Cache hits are free:
	// the budget paces work, and a hit executes nothing. Zero disables
	// budgets.
	TenantRate float64
	// TenantBurst is each tenant's bucket size — the burst credits an idle
	// tenant accumulates. Zero defaults to max(1, TenantRate): one second
	// of headroom.
	TenantBurst float64
}

// DefaultConfig returns a configuration sized for the laptop-scale models:
// two workers, batches of up to 8, a 2ms coalescing window, and the fault-
// tolerance layer on (10s watchdog, 3 quarantine retries — enough to
// isolate any single poison request in a batch of 8 — and breakers that
// open after 5 consecutive failures for 500ms, backing off to 30s).
func DefaultConfig() Config {
	return Config{
		Workers:           2,
		MaxBatch:          8,
		BatchDelay:        2 * time.Millisecond,
		QueueCap:          256,
		LatencyWindow:     4096,
		Watchdog:          10 * time.Second,
		RetryBudget:       3,
		BreakerThreshold:  5,
		BreakerBackoff:    500 * time.Millisecond,
		BreakerMaxBackoff: 30 * time.Second,
	}
}

// Validate rejects configurations that cannot serve: a server with zero
// workers would admit requests and never run them.
func (c Config) Validate() error {
	switch {
	case c.Workers <= 0:
		return fmt.Errorf("serve: Workers must be positive, got %d", c.Workers)
	case c.MaxBatch <= 0:
		return fmt.Errorf("serve: MaxBatch must be positive, got %d", c.MaxBatch)
	case c.QueueCap < c.MaxBatch:
		return fmt.Errorf("serve: QueueCap %d below MaxBatch %d", c.QueueCap, c.MaxBatch)
	case c.BatchDelay < 0:
		return fmt.Errorf("serve: negative BatchDelay %v", c.BatchDelay)
	case c.DefaultTimeout < 0:
		return fmt.Errorf("serve: negative DefaultTimeout %v", c.DefaultTimeout)
	case c.LatencyWindow <= 0:
		return fmt.Errorf("serve: LatencyWindow must be positive, got %d", c.LatencyWindow)
	case c.Watchdog < 0:
		return fmt.Errorf("serve: negative Watchdog %v", c.Watchdog)
	case c.RetryBudget < 0:
		return fmt.Errorf("serve: negative RetryBudget %d", c.RetryBudget)
	case c.BreakerThreshold < 0:
		return fmt.Errorf("serve: negative BreakerThreshold %d", c.BreakerThreshold)
	case c.BreakerThreshold > 0 && c.BreakerBackoff <= 0:
		return fmt.Errorf("serve: BreakerThreshold %d needs a positive BreakerBackoff, got %v",
			c.BreakerThreshold, c.BreakerBackoff)
	case c.BreakerBackoff < 0:
		return fmt.Errorf("serve: negative BreakerBackoff %v", c.BreakerBackoff)
	case c.BreakerMaxBackoff < 0:
		return fmt.Errorf("serve: negative BreakerMaxBackoff %v", c.BreakerMaxBackoff)
	case c.LatencySLO < 0:
		return fmt.Errorf("serve: negative LatencySLO %v", c.LatencySLO)
	case c.CacheBytes < 0:
		return fmt.Errorf("serve: negative CacheBytes %d", c.CacheBytes)
	case c.CacheTTL < 0:
		return fmt.Errorf("serve: negative CacheTTL %v", c.CacheTTL)
	case c.NegativeTTL < 0:
		return fmt.Errorf("serve: negative NegativeTTL %v", c.NegativeTTL)
	case c.CacheShards < 0:
		return fmt.Errorf("serve: negative CacheShards %d", c.CacheShards)
	case c.HotThreshold < 0:
		return fmt.Errorf("serve: negative HotThreshold %d", c.HotThreshold)
	case c.HotThreshold > 0 && c.CacheBytes <= 0:
		return fmt.Errorf("serve: HotThreshold %d needs a result cache (CacheBytes > 0)", c.HotThreshold)
	case c.HotDecay < 0:
		return fmt.Errorf("serve: negative HotDecay %d", c.HotDecay)
	case c.HotBytes < 0:
		return fmt.Errorf("serve: negative HotBytes %d", c.HotBytes)
	case c.TenantRate < 0:
		return fmt.Errorf("serve: negative TenantRate %v", c.TenantRate)
	case c.TenantBurst < 0:
		return fmt.Errorf("serve: negative TenantBurst %v", c.TenantBurst)
	}
	for tenant, w := range c.TenantWeights {
		if w <= 0 {
			return fmt.Errorf("serve: non-positive weight %d for tenant %q", w, tenant)
		}
	}
	return nil
}

// Server is the serving layer. Create with New; all methods are safe for
// concurrent use.
type Server struct {
	cfg     Config
	backend Backend
	start   time.Time

	st *state
	h  *health

	// abandoned counts watchdog-abandoned executions still running, per
	// variant. invoke fails fast with ErrWatchdog once a variant reaches
	// maxAbandonedPerVariant, so a permanently hung variant cannot
	// accumulate goroutines without bound via probes and retries.
	abMu      sync.Mutex
	abandoned map[string]int

	// budget is the per-tenant token-bucket admission limiter (nil when
	// Config.TenantRate is zero).
	budget *fair.Budget
	m      *metrics

	// Zero-contention request path (nil members when disabled).
	cache   *rcache.Cache // content-addressed result cache
	flights *flightGroup  // singleflight duplicate suppression
	// validator/epocher are the backend's optional interfaces, resolved
	// once at construction so the hot path never repeats the assertion.
	validator ImageValidator
	epocher   RouteEpocher
	// routes memoizes task -> routed variant per backend route epoch
	// (copy-on-write map: lock-free, allocation-free reads). Entries from
	// a previous epoch are ignored, so a publish or rollback atomically
	// invalidates every memoized route.
	routes atomic.Pointer[map[string]routeEntry]
}

// routeEntry is one memoized routing decision, valid only while the
// backend's route epoch still matches.
type routeEntry struct {
	epoch   uint64
	variant string
}

// New validates the configuration and starts the worker pool. The returned
// server accepts requests immediately.
func New(b Backend, cfg Config) (*Server, error) {
	if b == nil {
		return nil, fmt.Errorf("serve: nil backend")
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	s := &Server{
		cfg:       cfg,
		backend:   b,
		start:     time.Now(),
		st:        newState(),
		h:         newHealth(cfg.BreakerThreshold, cfg.BreakerBackoff, cfg.BreakerMaxBackoff),
		abandoned: map[string]int{},
		m:         newMetrics(cfg.MaxBatch, cfg.LatencyWindow),
	}
	if cfg.TenantRate > 0 {
		s.budget = fair.NewBudget(cfg.TenantRate, cfg.TenantBurst)
	}
	s.validator, _ = b.(ImageValidator)
	s.epocher, _ = b.(RouteEpocher)
	if cfg.CacheBytes > 0 {
		rc := rcache.Config{
			MaxBytes: cfg.CacheBytes, TTL: cfg.CacheTTL, Shards: cfg.CacheShards, NegTTL: cfg.NegativeTTL,
			HotThreshold: cfg.HotThreshold, HotDecay: cfg.HotDecay, HotMaxBytes: cfg.HotBytes,
		}
		if ps, ok := b.(PayloadSizer); ok {
			rc.SizeOf = ps.PayloadBytes
		}
		s.cache = rcache.New(rc)
		if rn, ok := b.(RetirementNotifier); ok && cfg.HotThreshold > 0 {
			// Retire a superseded/demoted version's hot-tier replicas before
			// the backend's new routing view can serve, so a promoted
			// replica never outlives its version. Shard entries are left to
			// their natural versioned-key invalidation — a rollback may
			// still resurrect the restored version's TTL-valid entries.
			cache := s.cache
			rn.OnRetire(func(artifact string) { cache.RetireReplicas(artifact) })
		}
	}
	if cfg.Coalesce {
		s.flights = newFlightGroup(16)
	}
	empty := map[string]routeEntry{}
	s.routes.Store(&empty)
	s.st.workerWG.Add(cfg.Workers)
	for i := 0; i < cfg.Workers; i++ {
		go s.worker()
	}
	return s, nil
}

// Submit admits one request and returns the channel its outcome will be
// delivered on (buffered: the result is never lost if the caller walks
// away). Admission fails fast with ErrQueueFull, ErrShuttingDown,
// ErrDeadlineExceeded, ErrBadShape, a *BreakerOpenError, or the backend's
// routing error. A result-cache hit is delivered on the returned channel
// immediately.
func (s *Server) Submit(req Request) (<-chan Outcome, error) {
	a, err := s.preadmit(&req)
	if err != nil {
		return nil, err
	}
	if res, ok := s.cacheGet(&a); ok {
		ch := make(chan Outcome, 1)
		ch <- Outcome{Res: res}
		return ch, nil
	}
	p, err := s.submitSlow(req, a)
	if err != nil {
		return nil, err
	}
	return p.done, nil
}

// admission carries a request's precomputed fast-path state (timestamps,
// normalized tenant, metrics shard hint, and — when the cache or coalescing
// is on — the content-addressed key) from preadmit to the cache probe and
// slow path.
type admission struct {
	now      time.Time
	deadline time.Time
	tenant   string
	hint     uint64
	key      rcache.Key
	haveKey  bool
}

// preadmit runs the per-request admission work shared by every path:
// validation, deadline defaulting and expiry, and — when the fast path is
// enabled — routing and content-key derivation. Allocation-free.
func (s *Server) preadmit(req *Request) (admission, error) {
	if req.Tenant == "" {
		req.Tenant = DefaultTenant
	}
	a := admission{now: time.Now(), tenant: req.Tenant}
	if req.Image == nil {
		s.m.inc(0, cRejectedShape)
		return a, fmt.Errorf("serve: nil image: %w", ErrBadShape)
	}
	if s.validator != nil {
		if err := s.validator.ValidateImage(req.Image); err != nil {
			s.m.inc(0, cRejectedShape)
			if !errors.Is(err, ErrBadShape) {
				err = fmt.Errorf("%w: %v", ErrBadShape, err)
			}
			return a, err
		}
	}
	a.deadline = req.Deadline
	if a.deadline.IsZero() && s.cfg.DefaultTimeout > 0 {
		a.deadline = a.now.Add(s.cfg.DefaultTimeout)
	}
	if !a.deadline.IsZero() && !a.now.Before(a.deadline) {
		s.m.inc(0, cShedExpired)
		return a, ErrDeadlineExceeded
	}
	// The metrics shard hint mixes the image digest (distinct content →
	// distinct shards) with the admission nanos (concurrent duplicates →
	// still spread), so hot counters never converge on one cache line.
	a.hint = uint64(a.now.UnixNano())
	if s.cache != nil || s.flights != nil {
		d := rcache.DigestImage(req.Image)
		a.hint ^= d
		variant, err := s.route(req.Task)
		if err != nil {
			s.m.inc(a.hint, cRejectedRoute)
			return a, err
		}
		a.key = rcache.Key{Artifact: variant, Task: req.Task, Digest: d}
		a.haveKey = true
		if req.Hot && s.cache != nil {
			// Upstream (the gateway's fleet-wide detector) already proved
			// the digest viral: pre-heat the hot tier instead of waiting for
			// the local detector, which only sees this shard's slice of the
			// replicated traffic.
			s.cache.MarkHot(a.key, a.now)
		}
		if s.cache != nil && s.cache.Negative(a.key, a.tenant, a.now) {
			// The exact content was recently proven poison on this version
			// by this tenant's own traffic: fail fast instead of re-running
			// a kernel known to panic on it. The verdict is tenant-scoped,
			// so one tenant's poison storm cannot blind another tenant to
			// content that would serve fine for them.
			s.m.inc(a.hint, cQuarantineBlocked)
			return a, fmt.Errorf("%w (digest %x on %s)", ErrQuarantined, a.key.Digest, a.key.Artifact)
		}
	}
	return a, nil
}

// route resolves task -> variant, memoizing per backend route epoch when
// the backend exposes one. The memo is a copy-on-write map: reads are
// lock-free and allocation-free, and any publish/rollback (which bumps the
// epoch) atomically invalidates every memoized decision.
func (s *Server) route(task string) (string, error) {
	if s.epocher == nil {
		return s.backend.Route(task)
	}
	epoch := s.epocher.RouteEpoch()
	m := s.routes.Load()
	if e, ok := (*m)[task]; ok && e.epoch == epoch {
		return e.variant, nil
	}
	variant, err := s.backend.Route(task)
	if err != nil {
		return "", err
	}
	next := make(map[string]routeEntry, len(*m)+1)
	for k, v := range *m {
		if v.epoch == epoch {
			next[k] = v
		}
	}
	next[task] = routeEntry{epoch: epoch, variant: variant}
	s.routes.CompareAndSwap(m, &next) // a lost race just drops the memo
	return variant, nil
}

// cacheGet probes the result cache. On hit the request is fully served:
// no queue, no batcher, no kernel, no allocation. Per-model attribution is
// untouched — PerModel counts executed work, and a hit executes nothing.
func (s *Server) cacheGet(a *admission) (Result, bool) {
	if s.cache == nil || !a.haveKey {
		return Result{}, false
	}
	payload, model, ok := s.cache.Get(a.key, a.now)
	if !ok {
		s.m.inc(a.hint, cCacheMisses)
		return Result{}, false
	}
	s.m.inc(a.hint, cAccepted)
	s.m.inc(a.hint, cCacheHits)
	s.m.inc(a.hint, cCompleted)
	total := time.Since(a.now)
	s.m.observeLatency(a.hint, total)
	s.m.tenantCompleted(a.tenant, total, false)
	return Result{Payload: payload, Model: model, Tenant: a.tenant, BatchSize: 1, Cached: true, Total: total}, true
}

// submitSlow is the post-cache admission path: tenant budget consult,
// singleflight join (leader or follower), then lane admission for leaders
// and un-coalesced requests.
func (s *Server) submitSlow(req Request, a admission) (*pending, error) {
	// The budget paces executed (or coalesced) work, so it is consulted
	// after the cache probe — hits are free reads — but before the flight
	// join, so an over-budget tenant cannot keep riding coalesced results
	// for content it hammers.
	if s.budget != nil && !s.budget.Allow(a.tenant, a.now) {
		s.m.inc(a.hint, cRejectedBudget)
		s.m.tenantRejected(a.tenant)
		return nil, &TenantBudgetError{Tenant: a.tenant, RetryAfter: s.budget.RetryAfter(a.tenant, a.now)}
	}
	p := &pending{
		image:    req.Image,
		task:     req.Task,
		tenant:   a.tenant,
		deadline: a.deadline,
		enq:      a.now,
		hint:     a.hint,
		key:      a.key,
		haveKey:  a.haveKey,
		done:     make(chan Outcome, 1),
	}
	if s.flights != nil && a.haveKey {
		if s.cache != nil {
			// Promoted digests never enter a flight: the hot tier replicates
			// exactly the keys whose concurrent duplicates coalescing exists
			// for, and between the admission-time cache probe and here a
			// concurrent fill may have promoted ours. A flight join would
			// park this request behind a leader (or a stripe mutex) for a
			// result already readable lock-free.
			if payload, model, ok := s.cache.Replicated(a.key, a.now); ok {
				s.m.inc(a.hint, cAccepted)
				s.m.inc(a.hint, cCacheHits)
				s.m.inc(a.hint, cCompleted)
				total := time.Since(a.now)
				s.m.observeLatency(a.hint, total)
				s.m.tenantCompleted(a.tenant, total, false)
				p.done <- Outcome{Res: Result{Payload: payload, Model: model, Tenant: a.tenant, BatchSize: 1, Cached: true, Total: total}}
				return p, nil
			}
		}
		f, isLeader := s.flights.join(a.key, p)
		if !isLeader {
			// Follower: the leader's terminal delivery resolves the
			// flight and either shares its result or re-admits us.
			s.m.inc(a.hint, cAccepted)
			return p, nil
		}
		p.flight = f
	}
	if err := s.admitLane(p); err != nil {
		// A leader that fails admission still owes its followers a
		// resolution; they re-execute rather than inherit the error.
		if p.flight != nil {
			s.finishFlight(p, Outcome{Err: err})
		}
		return nil, err
	}
	s.m.inc(a.hint, cAccepted)
	return p, nil
}

// admitLane routes p to a lane and enqueues it: routing (unless the
// fast path already routed), breaker consultation (with fallback rerouting
// when the preferred lane is open), and enqueue. Used by first admission
// and by follower re-execution.
func (s *Server) admitLane(p *pending) error {
	now := time.Now()
	variant := p.key.Artifact
	if !p.haveKey {
		v, err := s.backend.Route(p.task)
		if err != nil {
			s.m.inc(p.hint, cRejectedRoute)
			return err
		}
		variant = v
	}

	// Consult the lane's breaker; an open breaker degrades the request to
	// the fallback variant (the quantized generalist) when the backend
	// offers one and its lane is not itself open.
	p.degraded = ""
	p.probeKey = "" // non-empty when this request claims a half-open probe slot
	key := laneKey(variant, p.task)
	switch s.h.admit(key, now) {
	case admitProbe:
		p.probeKey = key
	case admitDeny:
		fv, ok := s.fallbackFor(p.task, variant, now, &p.probeKey)
		if !ok {
			s.m.inc(p.hint, cRejectedBreaker)
			return &BreakerOpenError{
				Variant:    variant,
				Task:       p.task,
				RetryAfter: s.h.retryAfter(key, now),
			}
		}
		variant = fv
		p.degraded = DegradedBreakerOpen
		s.m.inc(p.hint, cDegradedRouted)
	}

	if err := s.enqueue(variant, p.task, p); err != nil {
		if p.probeKey != "" {
			s.h.releaseProbe(p.probeKey)
			p.probeKey = ""
		}
		return err
	}
	return nil
}

// resubmit re-admits a follower whose leader failed to produce a shareable
// result. The follower runs the full fresh path (route, breaker, enqueue);
// it never joins another flight, so every request executes at most twice.
// An admission rejection becomes the follower's terminal outcome — it was
// already counted accepted, so it terminates as failed to keep the books
// balanced.
func (s *Server) resubmit(p *pending) {
	if err := s.admitLane(p); err != nil {
		s.m.inc(p.hint, cFailed)
		s.m.tenantFailed(p.tenant)
		p.done <- Outcome{Err: err}
	}
}

// fallbackFor resolves a healthy fallback lane for a task whose preferred
// variant's breaker is open. Reports ok=false when the backend has no
// fallback, the fallback is the broken variant itself, or the fallback
// lane's breaker is also open.
func (s *Server) fallbackFor(taskName, brokenVariant string, now time.Time, probeKey *string) (string, bool) {
	fr, ok := s.backend.(FallbackRouter)
	if !ok {
		return "", false
	}
	fv, err := fr.RouteFallback(taskName)
	if err != nil || fv == brokenVariant {
		return "", false
	}
	switch s.h.admit(laneKey(fv, taskName), now) {
	case admitDeny:
		return "", false
	case admitProbe:
		*probeKey = laneKey(fv, taskName)
	}
	return fv, true
}

// Detect is the synchronous entry point: it submits the request and waits
// for its outcome or for ctx. A ctx deadline doubles as the request
// deadline when the request carries none. When ctx is cancelled before the
// batcher flushes, the queued request is marked cancelled and shed at
// execution time instead of being run for nobody (and its image released).
func (s *Server) Detect(ctx context.Context, req Request) (Result, error) {
	if req.Deadline.IsZero() {
		if d, ok := ctx.Deadline(); ok {
			req.Deadline = d
		}
	}
	a, err := s.preadmit(&req)
	if err != nil {
		return Result{}, err
	}
	if res, ok := s.cacheGet(&a); ok {
		return res, nil
	}
	p, err := s.submitSlow(req, a)
	if err != nil {
		return Result{}, err
	}
	select {
	case out := <-p.done:
		return out.Res, out.Err
	case <-ctx.Done():
		p.cancelled.Store(true)
		return Result{}, ctx.Err()
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool {
	s.st.mu.Lock()
	defer s.st.mu.Unlock()
	return s.st.closed
}

// Shutdown stops admissions, readies every non-empty lane, drains them
// through the workers, and waits for the workers to exit (or for ctx,
// whichever first; on ctx expiry the drain keeps running in the
// background). Calling Shutdown on a draining server returns
// ErrShuttingDown.
func (s *Server) Shutdown(ctx context.Context) error {
	s.st.mu.Lock()
	if s.st.closed {
		s.st.mu.Unlock()
		return ErrShuttingDown
	}
	s.st.closed = true
	for _, ln := range s.st.lanes {
		if ln.q.Len() > 0 {
			s.st.markReadyLocked(ln)
		}
	}
	s.st.cond.Broadcast()
	s.st.mu.Unlock()

	done := make(chan struct{})
	go func() {
		s.st.workerWG.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return ctx.Err()
	}
}

// Snapshot returns the current metrics. See the Snapshot type for fields.
func (s *Server) Snapshot() Snapshot {
	s.st.mu.Lock()
	depth := s.st.queued
	s.st.mu.Unlock()
	snap := s.m.snapshot(time.Since(s.start), depth)
	snap.Breakers = s.h.snapshot(time.Now())
	if cs, ok := s.backend.(CacheStatser); ok {
		stats := cs.CacheStats()
		snap.Cache = &stats
		if total := stats.Hits + stats.Misses; total > 0 {
			snap.CacheHitRate = float64(stats.Hits) / float64(total)
		}
	}
	if rs, ok := s.backend.(RegistryStatser); ok {
		stats := rs.RegistryStats()
		snap.Registry = &stats
	}
	if s.cache != nil {
		stats := s.cache.Stats()
		snap.ResultCache = &stats
		if stats.Hits > 0 {
			snap.ReplicatedHitRate = float64(stats.HotHits) / float64(stats.Hits)
		}
	}
	return snap
}
