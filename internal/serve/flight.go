package serve

import (
	"sync"

	"itask/internal/rcache"
)

// Singleflight coalescing: concurrent requests that share a cache key
// (same routed artifact version, task, and image content) collapse into one
// backend execution. The first request to miss the cache becomes the
// *leader* and rides the normal admission path (breaker consult, queue,
// batcher); requests arriving while the leader is in flight become
// *followers* and wait on the leader's outcome without ever touching the
// admission queue — duplicate suppression before lane admission.
//
// Failure semantics are deliberately conservative:
//
//   - A failed leader never fails its followers. Whatever killed the leader
//     (poison content, a panic, queue-full, a missed deadline, a cancelled
//     context) is the leader's outcome alone; each follower is re-admitted
//     through the full fresh path (route, breaker, enqueue) and earns its
//     own outcome. A follower re-execution never joins another flight, so
//     every request executes at most twice.
//   - A degraded (fallback-served) leader result IS shared with followers —
//     it is a valid detection for the same (task, image) and is flagged
//     Degraded — but it is never cached under the task-specific key (see
//     deliver), so degradation cannot outlive the breaker that caused it.
//
// The table is striped by digest like the result cache, so flights on
// distinct images never contend on a shared lock.

// flight collects the followers waiting on one leader's outcome.
type flight struct {
	followers []*pending
}

// flightStripe is one lock stripe of the flight table, padded so adjacent
// stripes never share a cache line.
type flightStripe struct {
	mu sync.Mutex
	m  map[rcache.Key]*flight
	_  [64]byte
}

// flightGroup is the striped singleflight table.
type flightGroup struct {
	stripes []flightStripe
	mask    uint64
}

func newFlightGroup(stripes int) *flightGroup {
	n := nextPow2(stripes)
	if n < 4 {
		n = 4
	}
	g := &flightGroup{stripes: make([]flightStripe, n), mask: uint64(n - 1)}
	for i := range g.stripes {
		g.stripes[i].m = map[rcache.Key]*flight{}
	}
	return g
}

func (g *flightGroup) stripe(key rcache.Key) *flightStripe {
	return &g.stripes[key.Digest&g.mask]
}

// join attaches p to the flight for key. When no flight exists, p becomes
// the leader of a new one (isLeader=true); the leader's terminal delivery
// must resolve the flight exactly once. Otherwise p is registered as a
// follower and must not be enqueued — its outcome arrives via resolve.
func (g *flightGroup) join(key rcache.Key, p *pending) (f *flight, isLeader bool) {
	st := g.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if f := st.m[key]; f != nil {
		f.followers = append(f.followers, p)
		return f, false
	}
	f = &flight{}
	st.m[key] = f
	return f, true
}

// resolve detaches the flight for key and returns its followers for
// delivery. A request joining after resolve finds no flight and becomes a
// fresh leader, so no follower can attach to an already-resolved flight.
func (g *flightGroup) resolve(key rcache.Key, f *flight) []*pending {
	st := g.stripe(key)
	st.mu.Lock()
	defer st.mu.Unlock()
	if st.m[key] == f {
		delete(st.m, key)
	}
	followers := f.followers
	f.followers = nil
	return followers
}
