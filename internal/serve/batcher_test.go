package serve

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

// A single request in an otherwise idle server must not wait for a full
// batch: the BatchDelay timer flushes the lane and the request completes in
// a batch of one.
func TestFlushOnDeadlineSingleRequest(t *testing.T) {
	fb := newFakeBackend()
	cfg := Config{Workers: 1, MaxBatch: 64, BatchDelay: 10 * time.Millisecond, QueueCap: 128, LatencyWindow: 16}
	s := newTestServer(t, fb, cfg)

	start := time.Now()
	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatal(err)
	}
	if res.BatchSize != 1 {
		t.Errorf("batch size = %d, want 1", res.BatchSize)
	}
	if waited := time.Since(start); waited < cfg.BatchDelay/2 {
		t.Logf("note: completed in %v (timer may have fired early under load)", waited)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Errorf("single request waited %v: flush timer did not fire", waited)
	}
	if sizes := fb.sizes(); len(sizes) != 1 || sizes[0] != 1 {
		t.Errorf("backend saw batches %v, want [1]", sizes)
	}
}

// When the admission queue is at QueueCap, further submissions fail fast
// with ErrQueueFull instead of growing the queue.
func TestQueueFullRejection(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 50 * time.Millisecond
	// One slow worker, small queue: admitted requests pile up in the lane
	// and in blocked dispatches until QueueCap is hit.
	cfg := Config{Workers: 1, MaxBatch: 4, BatchDelay: 20 * time.Millisecond, QueueCap: 8, LatencyWindow: 16}
	s := newTestServer(t, fb, cfg)

	var wg sync.WaitGroup
	var mu sync.Mutex
	var full int
	const n = 32
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
			if errors.Is(err, ErrQueueFull) {
				mu.Lock()
				full++
				mu.Unlock()
			} else if err != nil {
				t.Errorf("unexpected error: %v", err)
			}
		}()
	}
	wg.Wait()
	if full == 0 {
		t.Error("no submission was rejected with ErrQueueFull")
	}
	if snap := s.Snapshot(); snap.RejectedFull == 0 {
		t.Errorf("RejectedFull = 0; snapshot %+v", snap)
	}
}

// Shutdown while requests are queued must drain them: every already-admitted
// request completes, new ones are refused with ErrShuttingDown.
func TestShutdownWhileDraining(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 10 * time.Millisecond
	cfg := Config{Workers: 1, MaxBatch: 4, BatchDelay: time.Hour, QueueCap: 64, LatencyWindow: 64}
	s, err := New(fb, cfg)
	if err != nil {
		t.Fatal(err)
	}

	// Admit requests that will sit in the lane: BatchDelay is an hour and
	// MaxBatch is 4, so with 3 requests nothing flushes until Shutdown.
	const n = 3
	chans := make([]<-chan Outcome, n)
	for i := 0; i < n; i++ {
		ch, err := s.Submit(Request{Task: "patrol", Image: testImage()})
		if err != nil {
			t.Fatal(err)
		}
		chans[i] = ch
	}

	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := s.Shutdown(ctx); err != nil {
		t.Fatalf("shutdown: %v", err)
	}

	for i, ch := range chans {
		select {
		case out := <-ch:
			if out.Err != nil {
				t.Errorf("request %d failed during drain: %v", i, out.Err)
			}
		default:
			t.Errorf("request %d not completed by Shutdown", i)
		}
	}
	if !s.Draining() {
		t.Error("Draining() = false after Shutdown")
	}
	if _, err := s.Submit(Request{Task: "patrol", Image: testImage()}); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("post-shutdown submit error = %v, want ErrShuttingDown", err)
	}
	if err := s.Shutdown(ctx); !errors.Is(err, ErrShuttingDown) {
		t.Errorf("second shutdown error = %v, want ErrShuttingDown", err)
	}
	snap := s.Snapshot()
	if snap.Completed != n {
		t.Errorf("Completed = %d, want %d", snap.Completed, n)
	}
	if snap.RejectedClosed != 1 {
		t.Errorf("RejectedClosed = %d, want 1", snap.RejectedClosed)
	}
}

// waitBatches blocks until the fake backend has begun executing n batches.
func waitBatches(t *testing.T, fb *fakeBackend, n int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for len(fb.sizes()) < n {
		if time.Now().After(deadline) {
			t.Fatalf("backend never started batch %d", n)
		}
		time.Sleep(time.Millisecond)
	}
}

// A request whose deadline passes while it waits in the queue is shed at
// execution time rather than run for nobody.
func TestDeadlineShedWhileQueued(t *testing.T) {
	fb := newFakeBackend()
	// The blocker must still be on the worker when the doomed request's
	// 1ms deadline passes AND when it is submitted; a generous hold keeps
	// the test deterministic on an oversubscribed CI core.
	fb.delay = 250 * time.Millisecond
	cfg := Config{Workers: 1, MaxBatch: 1, BatchDelay: 0, QueueCap: 16, LatencyWindow: 16}
	s := newTestServer(t, fb, cfg)

	// Occupy the only worker, and wait until it is actually inside the
	// backend call (dispatch is asynchronous).
	blocker, err := s.Submit(Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatal(err)
	}
	waitBatches(t, fb, 1)
	// This one expires while the blocker runs.
	doomed, err := s.Submit(Request{
		Task: "patrol", Image: testImage(),
		Deadline: time.Now().Add(time.Millisecond),
	})
	if err != nil {
		t.Fatal(err)
	}
	out := <-doomed
	if !errors.Is(out.Err, ErrDeadlineExceeded) {
		t.Errorf("doomed request err = %v, want ErrDeadlineExceeded", out.Err)
	}
	<-blocker
	if snap := s.Snapshot(); snap.ShedExpired != 1 {
		t.Errorf("ShedExpired = %d, want 1", snap.ShedExpired)
	}
}

// An already-expired deadline is refused at admission.
func TestExpiredDeadlineRefusedAtAdmission(t *testing.T) {
	s := newTestServer(t, newFakeBackend(), DefaultConfig())
	_, err := s.Submit(Request{
		Task: "patrol", Image: testImage(),
		Deadline: time.Now().Add(-time.Second),
	})
	if !errors.Is(err, ErrDeadlineExceeded) {
		t.Fatalf("err = %v, want ErrDeadlineExceeded", err)
	}
}

// DefaultTimeout applies to requests that carry no deadline.
func TestDefaultTimeout(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 100 * time.Millisecond
	cfg := Config{Workers: 1, MaxBatch: 1, BatchDelay: 0, QueueCap: 16,
		DefaultTimeout: 25 * time.Millisecond, LatencyWindow: 16}
	s := newTestServer(t, fb, cfg)

	blocker, err := s.Submit(Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatal(err)
	}
	waitBatches(t, fb, 1)
	doomed, err := s.Submit(Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatal(err)
	}
	if out := <-doomed; !errors.Is(out.Err, ErrDeadlineExceeded) {
		t.Errorf("err = %v, want ErrDeadlineExceeded via DefaultTimeout", out.Err)
	}
	<-blocker
}

// Detect honours context cancellation while waiting.
func TestDetectContextCancel(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 100 * time.Millisecond
	cfg := Config{Workers: 1, MaxBatch: 1, BatchDelay: 0, QueueCap: 16, LatencyWindow: 16}
	s := newTestServer(t, fb, cfg)

	ctx, cancel := context.WithCancel(context.Background())
	go func() {
		time.Sleep(5 * time.Millisecond)
		cancel()
	}()
	_, err := s.Detect(ctx, Request{Task: "patrol", Image: testImage()})
	if !errors.Is(err, context.Canceled) {
		t.Errorf("err = %v, want context.Canceled", err)
	}
}
