package serve

import (
	"context"
	"errors"
	"math"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/tensor"
)

// A request without a tenant is the default tenant; one with a tenant keeps
// it through to the Result and the per-tenant metrics.
func TestTenantNormalizationAndAttribution(t *testing.T) {
	fb := newFakeBackend()
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	s := newTestServer(t, fb, cfg)

	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage()})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenant != DefaultTenant {
		t.Errorf("unattributed request Tenant = %q, want %q", res.Tenant, DefaultTenant)
	}
	res, err = s.Detect(context.Background(), Request{Task: "patrol", Image: testImage(), Tenant: "acme"})
	if err != nil {
		t.Fatal(err)
	}
	if res.Tenant != "acme" {
		t.Errorf("Tenant = %q, want acme", res.Tenant)
	}

	snap := s.Snapshot()
	if len(snap.PerTenant) != 2 {
		t.Fatalf("PerTenant = %+v, want rows for default and acme", snap.PerTenant)
	}
	byTenant := map[string]TenantStats{}
	for _, ts := range snap.PerTenant {
		byTenant[ts.Tenant] = ts
	}
	for _, tenant := range []string{DefaultTenant, "acme"} {
		ts := byTenant[tenant]
		if ts.Completed != 1 {
			t.Errorf("tenant %s Completed = %d, want 1", tenant, ts.Completed)
		}
		if ts.LatencyP99US <= 0 {
			t.Errorf("tenant %s p99 not recorded", tenant)
		}
	}
}

// An over-budget tenant is refused with a *TenantBudgetError carrying a
// Retry-After hint; other tenants' buckets are untouched.
func TestTenantBudgetRejection(t *testing.T) {
	fb := newFakeBackend()
	cfg := DefaultConfig()
	cfg.BatchDelay = 0
	cfg.TenantRate = 0.001 // effectively no refill within the test
	cfg.TenantBurst = 2
	s := newTestServer(t, fb, cfg)

	for i := 0; i < 2; i++ {
		if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage(), Tenant: "noisy"}); err != nil {
			t.Fatalf("burst request %d: %v", i, err)
		}
	}
	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage(), Tenant: "noisy"})
	if !errors.Is(err, ErrTenantBudget) {
		t.Fatalf("over-budget err = %v, want ErrTenantBudget", err)
	}
	var tbe *TenantBudgetError
	if !errors.As(err, &tbe) || tbe.Tenant != "noisy" || tbe.RetryAfter <= 0 {
		t.Fatalf("budget error = %#v, want tenant noisy with positive RetryAfter", tbe)
	}
	// The quiet tenant still has its full burst.
	if _, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage(), Tenant: "quiet"}); err != nil {
		t.Fatalf("quiet tenant rejected after noisy's overrun: %v", err)
	}
	snap := s.Snapshot()
	if snap.RejectedBudget != 1 {
		t.Errorf("RejectedBudget = %d, want 1", snap.RejectedBudget)
	}
	for _, ts := range snap.PerTenant {
		if ts.Tenant == "noisy" && ts.Rejected != 1 {
			t.Errorf("noisy Rejected = %d, want 1", ts.Rejected)
		}
		if ts.Tenant == "quiet" && ts.Rejected != 0 {
			t.Errorf("quiet Rejected = %d, want 0", ts.Rejected)
		}
	}
}

// The weighted queue-share guard: with two configured tenants, a flooding
// tenant is capped at its share of QueueCap while the other tenant's
// reserved slots still admit.
func TestTenantQueueShareGuard(t *testing.T) {
	fb := newFakeBackend()
	fb.delay = 50 * time.Millisecond
	cfg := Config{
		Workers: 1, MaxBatch: 4, BatchDelay: time.Hour, QueueCap: 32, LatencyWindow: 16,
		TenantWeights: map[string]int{"flood": 1, "steady": 1},
	}
	s := newTestServer(t, fb, cfg)

	// Fill flood's share (16 of 32) without any worker drain: BatchDelay is
	// an hour and MaxBatch is 4 — but a full batch readies the lane, so
	// occupy the single worker first with one flood batch.
	admitted, full := 0, 0
	for i := 0; i < cfg.QueueCap; i++ {
		_, err := s.Submit(Request{Task: "patrol", Image: testImage(), Tenant: "flood"})
		switch {
		case err == nil:
			admitted++
		case errors.Is(err, ErrQueueFull):
			full++
		default:
			t.Fatalf("unexpected admission error: %v", err)
		}
	}
	if full == 0 {
		t.Fatalf("flood admitted all %d submissions; share guard never engaged", admitted)
	}
	// steady must still have room in its reserved half.
	if _, err := s.Submit(Request{Task: "patrol", Image: testImage(), Tenant: "steady"}); err != nil {
		t.Fatalf("steady tenant rejected while flood is capped: %v", err)
	}
	if snap := s.Snapshot(); snap.RejectedShare == 0 {
		t.Errorf("RejectedShare = 0 after flood capping; snapshot %+v", snap)
	}
}

// poisonOnceBackend panics on every request while armed, then succeeds.
type poisonOnceBackend struct {
	*fakeBackend
	armed atomic.Bool
}

func (b *poisonOnceBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	if b.armed.CompareAndSwap(true, false) {
		panic("poison kernel")
	}
	return b.fakeBackend.DetectBatch(variant, task, imgs)
}

// Quarantine verdicts are tenant-scoped: tenant A's poison mark refuses
// A's retries with ErrQuarantined but tenant B executes the same content
// fresh (and succeeds, the kernel having recovered).
func TestQuarantineScopedPerTenant(t *testing.T) {
	b := &poisonOnceBackend{fakeBackend: newFakeBackend()}
	b.armed.Store(true)
	cfg := Config{
		Workers: 1, MaxBatch: 1, BatchDelay: 0, QueueCap: 16, LatencyWindow: 16,
		CacheBytes: 1 << 20, NegativeTTL: time.Minute,
	}
	s := newTestServer(t, b, cfg)

	img := testImage()
	_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img, Tenant: "a"})
	if !errors.Is(err, ErrBackendPanic) {
		t.Fatalf("poison execution err = %v, want ErrBackendPanic", err)
	}
	// A's identical content is refused from A's negative entry.
	_, err = s.Detect(context.Background(), Request{Task: "patrol", Image: img, Tenant: "a"})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("tenant a retry err = %v, want ErrQuarantined", err)
	}
	// B is not blinded by A's verdict: same digest, fresh execution.
	res, err := s.Detect(context.Background(), Request{Task: "patrol", Image: img, Tenant: "b"})
	if err != nil {
		t.Fatalf("tenant b blinded by tenant a's quarantine: %v", err)
	}
	if res.Tenant != "b" || res.Cached {
		t.Fatalf("tenant b result = %+v, want fresh execution attributed to b", res)
	}
	// A is still quarantined even though B's success filled the positive
	// cache for the digest (the negative probe runs before the cache).
	_, err = s.Detect(context.Background(), Request{Task: "patrol", Image: img, Tenant: "a"})
	if !errors.Is(err, ErrQuarantined) {
		t.Fatalf("tenant a post-b err = %v, want ErrQuarantined until TTL", err)
	}
}

// Under saturation, tenants sharing one lane receive throughput
// proportional to their configured weights (the ISSUE's ±15% criterion).
func TestWeightedTenantsShareThroughput(t *testing.T) {
	if testing.Short() {
		t.Skip("saturation run")
	}
	fb := newFakeBackend()
	fb.delay = 2 * time.Millisecond // per batch: throughput == batch slots served
	weights := map[string]int{"bronze": 1, "silver": 2, "gold": 4}
	cfg := Config{
		Workers: 1, MaxBatch: 8, BatchDelay: time.Millisecond, QueueCap: 64,
		LatencyWindow: 256, TenantWeights: weights,
	}
	s := newTestServer(t, fb, cfg)

	// Open-loop enough to keep every tenant's subqueue backlogged: each
	// tenant runs far more submitters than its queue share, so the DRR
	// dequeue — not caller concurrency — decides who gets served.
	var stop atomic.Bool
	served := sync.Map{}
	var wg sync.WaitGroup
	for tenant := range weights {
		count := &atomic.Int64{}
		served.Store(tenant, count)
		for g := 0; g < 24; g++ {
			wg.Add(1)
			go func(tenant string, count *atomic.Int64) {
				defer wg.Done()
				for !stop.Load() {
					_, err := s.Detect(context.Background(), Request{Task: "patrol", Image: testImage(), Tenant: tenant})
					if err == nil {
						count.Add(1)
					} else if errors.Is(err, ErrQueueFull) {
						time.Sleep(200 * time.Microsecond) // queue-share cap hit; let it drain
					} else {
						t.Errorf("tenant %s: %v", tenant, err)
						return
					}
				}
			}(tenant, count)
		}
	}
	time.Sleep(1200 * time.Millisecond)
	stop.Store(true)
	wg.Wait()

	total := 0.0
	counts := map[string]float64{}
	for tenant := range weights {
		c, _ := served.Load(tenant)
		counts[tenant] = float64(c.(*atomic.Int64).Load())
		total += counts[tenant]
	}
	if total < 100 {
		t.Fatalf("only %.0f completions; saturation run too small to judge", total)
	}
	for tenant, w := range weights {
		got := counts[tenant] / total
		want := float64(w) / 7.0
		t.Logf("tenant %s: %0.f completions, share %.3f (want %.3f)", tenant, counts[tenant], got, want)
		if math.Abs(got-want)/want > 0.15 {
			t.Errorf("tenant %s served share %.3f, want %.3f +-15%% (counts %v)", tenant, got, want, counts)
		}
	}
}
