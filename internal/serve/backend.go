package serve

import (
	"context"
	"time"

	"itask/internal/registry"
	"itask/internal/sched"
	"itask/internal/tensor"
)

// Backend executes routed micro-batches. The root itask package implements
// it over Pipeline + sched.Scheduler; tests use in-memory fakes. A Backend
// must be safe for concurrent use: every worker calls DetectBatch
// concurrently, and Route runs on every admission.
type Backend interface {
	// Route resolves a task to the name of the model variant that would
	// serve it right now, without loading the model or perturbing the
	// cache. Requests that resolve to the same (variant, task) pair may be
	// coalesced into a single DetectBatch call.
	Route(task string) (variant string, err error)

	// DetectBatch runs one coalesced batch of same-task images on the
	// named variant (the one a prior Route or RouteFallback returned) and
	// returns one backend-defined payload per image (e.g.
	// []itask.Detection) plus the name of the model that served the batch.
	// len(payloads) must equal len(imgs) on success. The server executes
	// DetectBatch under recover: a panicking backend fails the batch (and,
	// after quarantine bisection, only the poison requests), never the
	// server.
	DetectBatch(variant, task string, imgs []*tensor.Tensor) (payloads []any, model string, err error)
}

// ContextBackend is optionally implemented by backends whose batch
// execution can honor cancellation. When implemented, the server prefers
// DetectBatchContext over DetectBatch and cancels ctx when the watchdog
// abandons the execution, so a hung-but-cooperative backend stops working
// on the dead batch instead of leaking a goroutine (a plain DetectBatch can
// only be abandoned, never stopped). Same contract as DetectBatch
// otherwise; returning ctx.Err() after cancellation is the expected shape.
type ContextBackend interface {
	DetectBatchContext(ctx context.Context, variant, task string, imgs []*tensor.Tensor) (payloads []any, model string, err error)
}

// FallbackRouter is optionally implemented by backends that can serve a
// task on a degraded configuration (the paper's quantized generalist) when
// the preferred variant's circuit breaker is open. RouteFallback must not
// load the model; an error means no fallback exists for the task.
type FallbackRouter interface {
	RouteFallback(task string) (variant string, err error)
}

// VariantEvicter is optionally implemented by backends that cache model
// weights. The server calls EvictVariant after a variant panics or blows
// the watchdog, so possibly-corrupt resident weights are dropped and the
// next selection reloads them from storage instead of trusting the cached
// copy as healthy.
type VariantEvicter interface {
	EvictVariant(variant string)
}

// ImageValidator is optionally implemented by backends that can check an
// input tensor's shape without running it. The server calls ValidateImage
// at admission so malformed input fails fast with ErrBadShape instead of
// reaching a panicking kernel inside a shared micro-batch.
type ImageValidator interface {
	ValidateImage(img *tensor.Tensor) error
}

// CacheStatser is optionally implemented by backends that sit on a model
// cache; the server surfaces the stats in its metrics snapshot.
type CacheStatser interface {
	CacheStats() sched.CacheStats
}

// VariantHealthSink is optionally implemented by backends that maintain a
// versioned model registry. The server reports its health verdicts on a
// variant — a recovered panic, a watchdog abandonment, or a circuit breaker
// tripping open — so the registry can demote the version and roll the
// artifact back to its last-known-good version. Must be fast and
// non-blocking; it runs on the execution path.
type VariantHealthSink interface {
	VariantUnhealthy(variant, task, reason string)
}

// Health-verdict reasons passed to VariantHealthSink.VariantUnhealthy.
const (
	UnhealthyPanic    = "panic"
	UnhealthyWatchdog = "watchdog"
	UnhealthyBreaker  = "breaker-open"
)

// RegistryStatser is optionally implemented by backends with a versioned
// model registry; the server surfaces publish/rollback counters in its
// metrics snapshot.
type RegistryStatser interface {
	RegistryStats() registry.Stats
}

// RetirementNotifier is optionally implemented by backends with a versioned
// model registry. OnRetire registers a hook the backend must call with the
// full versioned artifact ID of every version that stops being active —
// superseded by a publish, or quarantined by a demotion/rollback — *before*
// the new routing view becomes observable. The server uses it to retire the
// version's result-cache state (including lock-free hot-tier replicas)
// atomically with the version itself, so a promoted entry can never serve a
// retired version. Hooks run under the registry's write lock: they must be
// fast and must not call back into the backend.
type RetirementNotifier interface {
	OnRetire(fn func(artifact string))
}

// RouteEpocher is optionally implemented by backends whose routing table
// has a version. RouteEpoch must return a value that changes whenever any
// Route result could change (for the pipeline backend, the registry
// snapshot sequence — bumped by every publish, demotion, and rollback).
// The server memoizes Route per epoch, so RouteEpoch must be cheap and
// lock-free: it runs on every admission.
type RouteEpocher interface {
	RouteEpoch() uint64
}

// PayloadSizer is optionally implemented by backends that can estimate the
// resident size of a DetectBatch payload. The result cache charges entries
// against its byte budget with it; without it a conservative default is
// used.
type PayloadSizer interface {
	PayloadBytes(payload any) int64
}

// DefaultTenant is the tenant identity assigned to requests that carry
// none. Single-tenant deployments never need to set Request.Tenant: every
// request lands in the default tenant's subqueue and the weighted-fair
// machinery degenerates to plain FIFO.
const DefaultTenant = "default"

// Request is one detection call entering the serving layer.
type Request struct {
	// Task names the mission; it must be defined on the backend.
	Task string
	// Tenant identifies the request's owner for weighted-fair scheduling,
	// admission budgets, quarantine scoping, and per-tenant metrics
	// attribution. Empty is normalized to DefaultTenant at admission.
	// Callers must validate IDs at the edge (cmd/itask-serve bounds length
	// and rejects control characters) — the serving layer uses the string
	// as a map key verbatim.
	Tenant string
	// Image is the (C,H,W) input tensor.
	Image *tensor.Tensor
	// Deadline, when non-zero, is the admission-to-execution deadline:
	// requests still waiting past it are shed instead of executed.
	Deadline time.Time
	// Hot is an upstream hint (the gateway's fleet-wide hot-digest verdict,
	// X-Itask-Hot on HTTP) that this request's content is viral. The server
	// pre-heats the content's digest in the result cache's hot tier, so the
	// entry is promoted to the lock-free replica table without waiting for
	// the local detector — which sees only this shard's slice of the
	// replicated traffic — to trip on its own.
	Hot bool
}

// DegradedBreakerOpen is the Result.Degraded reason for requests rerouted
// to the fallback variant because the preferred lane's breaker was open.
const DegradedBreakerOpen = "breaker-open"

// Result is the successful outcome of one request.
type Result struct {
	// Payload is the backend's per-image result (for the pipeline backend,
	// []itask.Detection).
	Payload any
	// Model names the variant that served the request.
	Model string
	// Tenant is the normalized tenant the request was attributed to (the
	// request's own tenant — a coalesced follower keeps its identity even
	// when another tenant's leader executed the work).
	Tenant string
	// BatchSize is the size of the micro-batch the request rode in.
	BatchSize int
	// Degraded is empty for requests served on their preferred variant,
	// and a reason string (DegradedBreakerOpen) for requests the server
	// rerouted to the fallback configuration.
	Degraded string
	// Cached marks a result served straight from the content-addressed
	// result cache: no queue, no batch, no kernel ran for it.
	Cached bool
	// Coalesced marks a follower's result produced by another request's
	// execution (singleflight duplicate suppression).
	Coalesced bool
	// Queued is the time spent between admission and execution start.
	Queued time.Duration
	// Total is the admission-to-completion latency.
	Total time.Duration
}

// Outcome is the terminal state of a submitted request: a Result or an
// error, never both.
type Outcome struct {
	Res Result
	Err error
}
