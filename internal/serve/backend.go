package serve

import (
	"time"

	"itask/internal/sched"
	"itask/internal/tensor"
)

// Backend executes routed micro-batches. The root itask package implements
// it over Pipeline + sched.Scheduler; tests use in-memory fakes. A Backend
// must be safe for concurrent use: every worker calls DetectBatch
// concurrently, and Route runs on every admission.
type Backend interface {
	// Route resolves a task to the name of the model variant that would
	// serve it right now, without loading the model or perturbing the
	// cache. Requests that resolve to the same (variant, task) pair may be
	// coalesced into a single DetectBatch call.
	Route(task string) (variant string, err error)

	// DetectBatch runs one coalesced batch of same-task images and returns
	// one backend-defined payload per image (e.g. []itask.Detection) plus
	// the name of the model that served the batch. len(payloads) must
	// equal len(imgs) on success.
	DetectBatch(task string, imgs []*tensor.Tensor) (payloads []any, model string, err error)
}

// CacheStatser is optionally implemented by backends that sit on a model
// cache; the server surfaces the stats in its metrics snapshot.
type CacheStatser interface {
	CacheStats() sched.CacheStats
}

// Request is one detection call entering the serving layer.
type Request struct {
	// Task names the mission; it must be defined on the backend.
	Task string
	// Image is the (C,H,W) input tensor.
	Image *tensor.Tensor
	// Deadline, when non-zero, is the admission-to-execution deadline:
	// requests still waiting past it are shed instead of executed.
	Deadline time.Time
}

// Result is the successful outcome of one request.
type Result struct {
	// Payload is the backend's per-image result (for the pipeline backend,
	// []itask.Detection).
	Payload any
	// Model names the variant that served the request.
	Model string
	// BatchSize is the size of the micro-batch the request rode in.
	BatchSize int
	// Queued is the time spent between admission and execution start.
	Queued time.Duration
	// Total is the admission-to-completion latency.
	Total time.Duration
}

// Outcome is the terminal state of a submitted request: a Result or an
// error, never both.
type Outcome struct {
	Res Result
	Err error
}
