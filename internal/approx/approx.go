// Package approx implements the hardware-friendly approximations of the
// accelerator's vector unit: a bit-manipulation exponential for softmax and
// a Newton-refined inverse square root for LayerNorm. Real edge accelerators
// cannot afford full-precision transcendental units; these are the standard
// tricks (2^k decomposition with a quadratic fraction polynomial;
// Quake-style rsqrt seed with one Newton step) and the accuracy ablation in
// experiment E11 quantifies their end-to-end cost.
package approx

import (
	"math"

	"itask/internal/tensor"
)

// Exp approximates e^x for float32 via 2^(x·log2e): the integer part sets
// the exponent bits directly; the fractional part f in [0,1) uses the
// quadratic 2^f ≈ 1 + f·(0.6565 + 0.3435·f) (max relative error ≈ 0.3%).
// Inputs below -80 flush to 0 and above +80 saturate, which is safe for
// softmax where inputs are max-subtracted.
func Exp(x float32) float32 {
	if x > 80 {
		x = 80
	}
	if x < -80 {
		return 0
	}
	t := float64(x) * 1.4426950408889634 // log2(e)
	k := math.Floor(t)
	f := t - k
	// 2^f for f in [0,1): quadratic fit with exact endpoints.
	p := 1 + f*(0.6565+0.3435*f)
	// Assemble 2^k by exponent-bit construction.
	bits := uint64(k+1023) << 52
	return float32(math.Float64frombits(bits) * p)
}

// Rsqrt approximates 1/sqrt(x) with the classic bit-level seed and two
// Newton-Raphson iterations (max relative error well under 0.01%).
// x must be positive.
func Rsqrt(x float32) float32 {
	half := 0.5 * x
	bits := math.Float32bits(x)
	bits = 0x5f3759df - bits>>1
	y := math.Float32frombits(bits)
	y = y * (1.5 - half*y*y)
	y = y * (1.5 - half*y*y)
	return y
}

// SoftmaxRows is tensor.SoftmaxRows with the approximate exponential,
// matching what the vector unit computes.
func SoftmaxRows(t *tensor.Tensor) *tensor.Tensor {
	if t.Dims() != 2 {
		panic("approx: SoftmaxRows on non-matrix")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := tensor.New(r, c)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		o := out.Data[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float32
		for j, v := range row {
			e := Exp(v - m)
			o[j] = e
			sum += e
		}
		if sum > 0 {
			inv := 1 / sum
			for j := range o {
				o[j] *= inv
			}
		}
	}
	return out
}

// LayerNormRows normalizes each row with the approximate rsqrt and applies
// the affine transform, matching the vector unit's LayerNorm.
func LayerNormRows(x *tensor.Tensor, gamma, beta []float32, eps float32) *tensor.Tensor {
	if x.Dims() != 2 {
		panic("approx: LayerNormRows on non-matrix")
	}
	rows, d := x.Shape[0], x.Shape[1]
	if len(gamma) != d || len(beta) != d {
		panic("approx: LayerNormRows affine size mismatch")
	}
	out := tensor.New(rows, d)
	for i := 0; i < rows; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mean float32
		for _, v := range row {
			mean += v
		}
		mean /= float32(d)
		var variance float32
		for _, v := range row {
			dv := v - mean
			variance += dv * dv
		}
		variance /= float32(d)
		inv := Rsqrt(variance + eps)
		o := out.Data[i*d : (i+1)*d]
		for j, v := range row {
			o[j] = gamma[j]*((v-mean)*inv) + beta[j]
		}
	}
	return out
}

// GELU approximates the activation with the cheap sigmoid form
// gelu(x) ≈ x·σ(1.702x), σ computed with the approximate exponential —
// one Exp and one divide per element instead of a tanh.
func GELU(x float32) float32 {
	return x / (1 + Exp(-1.702*x))
}
