package approx

import (
	"math"
	"testing"
	"testing/quick"

	"itask/internal/tensor"
)

func TestExpAccuracy(t *testing.T) {
	// Softmax inputs are max-subtracted: the relevant domain is [-30, 0].
	for x := float32(-30); x <= 0; x += 0.01 {
		got := float64(Exp(x))
		want := math.Exp(float64(x))
		if want > 1e-12 {
			rel := math.Abs(got-want) / want
			if rel > 0.005 {
				t.Fatalf("Exp(%v) rel error %v", x, rel)
			}
		}
	}
	// Positive side up to saturation.
	for x := float32(0); x <= 20; x += 0.01 {
		rel := math.Abs(float64(Exp(x))-math.Exp(float64(x))) / math.Exp(float64(x))
		if rel > 0.005 {
			t.Fatalf("Exp(%v) rel error %v", x, rel)
		}
	}
}

func TestExpEdges(t *testing.T) {
	if Exp(-100) != 0 {
		t.Error("deep negative should flush to zero")
	}
	if v := Exp(100); math.IsInf(float64(v), 1) || math.IsNaN(float64(v)) {
		t.Errorf("saturated Exp produced %v", v)
	}
	if got := Exp(0); math.Abs(float64(got)-1) > 0.004 {
		t.Errorf("Exp(0) = %v", got)
	}
}

func TestRsqrtAccuracy(t *testing.T) {
	f := func(seed uint64) bool {
		rng := tensor.NewRNG(seed)
		x := float32(rng.Range(1e-6, 1e6))
		got := float64(Rsqrt(x))
		want := 1 / math.Sqrt(float64(x))
		return math.Abs(got-want)/want < 1e-4
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestSoftmaxRowsMatchesExact(t *testing.T) {
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 3, 8, 16)
	got := SoftmaxRows(x)
	want := tensor.SoftmaxRows(x)
	for i := range got.Data {
		if math.Abs(float64(got.Data[i]-want.Data[i])) > 0.005 {
			t.Fatalf("softmax[%d]: %v vs %v", i, got.Data[i], want.Data[i])
		}
	}
	// Rows still sum to 1 (normalization is exact by construction).
	for i := 0; i < 8; i++ {
		var sum float64
		for j := 0; j < 16; j++ {
			sum += float64(got.At(i, j))
		}
		if math.Abs(sum-1) > 1e-5 {
			t.Fatalf("row %d sums to %v", i, sum)
		}
	}
}

func TestLayerNormRowsMatchesExact(t *testing.T) {
	rng := tensor.NewRNG(2)
	d := 24
	x := tensor.Randn(rng, 2, 6, d)
	gamma := make([]float32, d)
	beta := make([]float32, d)
	for i := range gamma {
		gamma[i] = 1 + 0.1*float32(i%3)
		beta[i] = -0.05 * float32(i%5)
	}
	got := LayerNormRows(x, gamma, beta, 1e-5)
	// Exact reference.
	for i := 0; i < 6; i++ {
		row := x.Data[i*d : (i+1)*d]
		var mean float64
		for _, v := range row {
			mean += float64(v)
		}
		mean /= float64(d)
		var variance float64
		for _, v := range row {
			dv := float64(v) - mean
			variance += dv * dv
		}
		variance /= float64(d)
		inv := 1 / math.Sqrt(variance+1e-5)
		for j, v := range row {
			want := float64(gamma[j])*(float64(v)-mean)*inv + float64(beta[j])
			if math.Abs(float64(got.At(i, j))-want) > 1e-3 {
				t.Fatalf("LN[%d][%d]: %v vs %v", i, j, got.At(i, j), want)
			}
		}
	}
}

func TestGELUShape(t *testing.T) {
	// Sigmoid-GELU must agree with tanh-GELU within a few percent over the
	// active range and preserve the key fixed points.
	for x := float32(-5); x <= 5; x += 0.05 {
		got := float64(GELU(x))
		want := 0.5 * float64(x) * (1 + math.Tanh(0.7978845608*(float64(x)+0.044715*float64(x*x*x))))
		if math.Abs(got-want) > 0.035 {
			t.Fatalf("GELU(%v) = %v, reference %v", x, got, want)
		}
	}
	if GELU(0) != 0 {
		t.Error("GELU(0) must be 0")
	}
	if g := GELU(10); math.Abs(float64(g)-10) > 0.01 {
		t.Errorf("GELU(10) = %v, want ~10", g)
	}
}
