package tensor

import (
	"math/rand"
	"sync/atomic"
	"testing"
)

// edgeShapes exercises the tiled kernels on dimensions that stress every
// boundary case: degenerate 1×1, tall-skinny, short-wide, sizes that are not
// multiples of the register tile width, and sizes large enough to cross the
// parallel-dispatch threshold.
var edgeShapes = []struct{ m, k, n int }{
	{1, 1, 1},
	{1, 7, 1},
	{2, 3, 2},
	{3, 1, 5},
	{5, 4, 3},
	{4, 4, 4},
	{7, 13, 11},
	{17, 33, 29},
	{257, 3, 2},   // tall-skinny
	{3, 500, 7},   // short-wide, long inner dim
	{64, 64, 64},  // tile-aligned
	{65, 66, 67},  // tile-aligned plus one
	{128, 96, 80}, // crosses parallelThreshold
}

func randMat(rng *rand.Rand, r, c int) *Tensor {
	t := New(r, c)
	for i := range t.Data {
		t.Data[i] = float32(rng.NormFloat64())
	}
	return t
}

func TestMatMulEdgeShapesVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for _, s := range edgeShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.k, s.n)
		want := matMulNaive(a, b)
		if got := MatMul(a, b); !got.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("MatMul (%d,%d)@(%d,%d) diverges from naive", s.m, s.k, s.k, s.n)
		}
		out := GetScratchNoZero(s.m, s.n)
		MatMulInto(out, a, b)
		if !out.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("MatMulInto (%d,%d)@(%d,%d) diverges from naive", s.m, s.k, s.k, s.n)
		}
		PutScratch(out)
	}
}

func TestMatMulTEdgeShapesVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(12))
	for _, s := range edgeShapes {
		a := randMat(rng, s.m, s.k)
		b := randMat(rng, s.n, s.k) // (n,k): MatMulT computes a @ bᵀ
		want := matMulNaive(a, b.Transpose())
		if got := MatMulT(a, b); !got.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("MatMulT (%d,%d)@(%d,%d)T diverges from naive", s.m, s.k, s.n, s.k)
		}
		out := GetScratchNoZero(s.m, s.n)
		MatMulTInto(out, a, b)
		if !out.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("MatMulTInto (%d,%d)@(%d,%d)T diverges from naive", s.m, s.k, s.n, s.k)
		}
		PutScratch(out)
	}
}

func TestTMatMulEdgeShapesVsNaive(t *testing.T) {
	rng := rand.New(rand.NewSource(13))
	for _, s := range edgeShapes {
		a := randMat(rng, s.k, s.m) // (k,m): TMatMul computes aᵀ @ b
		b := randMat(rng, s.k, s.n)
		want := matMulNaive(a.Transpose(), b)
		if got := TMatMul(a, b); !got.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("TMatMul (%d,%d)T@(%d,%d) diverges from naive", s.k, s.m, s.k, s.n)
		}
		out := GetScratchNoZero(s.m, s.n)
		TMatMulInto(out, a, b)
		if !out.AllClose(want, 1e-4, 1e-4) {
			t.Fatalf("TMatMulInto (%d,%d)T@(%d,%d) diverges from naive", s.k, s.m, s.k, s.n)
		}
		PutScratch(out)
	}
}

func TestMatVecEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(14))
	for _, s := range edgeShapes {
		a := randMat(rng, s.m, s.k)
		x := New(s.k)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		got := MatVec(a, x)
		for i := 0; i < s.m; i++ {
			var want float64
			for j := 0; j < s.k; j++ {
				want += float64(a.Data[i*s.k+j]) * float64(x.Data[j])
			}
			if diff := float64(got.Data[i]) - want; diff > 1e-3 || diff < -1e-3 {
				t.Fatalf("MatVec (%d,%d) row %d: got %v want %v", s.m, s.k, i, got.Data[i], want)
			}
		}
		out := GetScratchNoZero(s.m)
		MatVecInto(out, a, x)
		if !out.AllClose(got, 0, 0) {
			t.Fatalf("MatVecInto differs from MatVec at (%d,%d)", s.m, s.k)
		}
		PutScratch(out)
	}
}

func TestOuterEdgeShapes(t *testing.T) {
	rng := rand.New(rand.NewSource(15))
	for _, s := range edgeShapes {
		x := New(s.m)
		y := New(s.n)
		for i := range x.Data {
			x.Data[i] = float32(rng.NormFloat64())
		}
		for i := range y.Data {
			y.Data[i] = float32(rng.NormFloat64())
		}
		got := Outer(x, y)
		for i := 0; i < s.m; i++ {
			for j := 0; j < s.n; j++ {
				if want := x.Data[i] * y.Data[j]; got.Data[i*s.n+j] != want {
					t.Fatalf("Outer (%d,%d) at (%d,%d): got %v want %v", s.m, s.n, i, j, got.Data[i*s.n+j], want)
				}
			}
		}
		out := GetScratchNoZero(s.m, s.n)
		OuterInto(out, x, y)
		if !out.AllClose(got, 0, 0) {
			t.Fatalf("OuterInto differs from Outer at (%d,%d)", s.m, s.n)
		}
		PutScratch(out)
	}
}

func TestParallelForCoversRangeOnce(t *testing.T) {
	for _, n := range []int{0, 1, 3, 17, 100, 1000} {
		for _, grain := range []int{1, 4, 7, 64} {
			hits := make([]int32, n)
			ParallelFor(n, grain, func(lo, hi int) {
				for i := lo; i < hi; i++ {
					atomic.AddInt32(&hits[i], 1)
				}
			})
			for i, h := range hits {
				if h != 1 {
					t.Fatalf("n=%d grain=%d: index %d visited %d times", n, grain, i, h)
				}
			}
		}
	}
}

// TestParallelForNested verifies the caller-participates pool design cannot
// deadlock when parallel regions nest (attention tiles dispatch GEMMs that
// may themselves try to parallelize).
func TestParallelForNested(t *testing.T) {
	var total atomic.Int64
	ParallelFor(8, 1, func(lo, hi int) {
		for i := lo; i < hi; i++ {
			ParallelFor(100, 10, func(ilo, ihi int) {
				total.Add(int64(ihi - ilo))
			})
		}
	})
	if got := total.Load(); got != 800 {
		t.Fatalf("nested ParallelFor covered %d of 800 elements", got)
	}
}

func TestScratchArenaReuse(t *testing.T) {
	a := GetScratch(33, 17)
	if a.Shape[0] != 33 || a.Shape[1] != 17 {
		t.Fatalf("GetScratch shape %v", a.Shape)
	}
	for _, v := range a.Data {
		if v != 0 {
			t.Fatal("GetScratch returned non-zeroed buffer")
		}
	}
	a.Data[0] = 42
	PutScratch(a)
	if a.Data != nil {
		t.Fatal("PutScratch must nil the Data slice")
	}
	// Same size class: the next NoZero Get should hand back pooled storage
	// (not guaranteed by sync.Pool, but must at least be usable and sized).
	b := GetScratchNoZero(40, 20)
	if len(b.Data) != 800 {
		t.Fatalf("GetScratchNoZero len %d want 800", len(b.Data))
	}
	c := GetScratch(40, 20)
	for _, v := range c.Data {
		if v != 0 {
			t.Fatal("GetScratch must zero recycled buffers")
		}
	}
	PutScratch(b, c, nil) // nil entries are skipped
}
