package tensor

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// The kernels in this package parallelize over row tiles on one persistent,
// package-wide worker pool instead of spawning goroutines per call. Workers
// self-schedule: every participant (the pool workers plus the submitting
// goroutine) repeatedly claims the next unclaimed tile from a shared atomic
// counter, so a worker that finishes early steals the remaining tiles of a
// slow peer's range. The submitter always executes tiles itself, which makes
// nested ParallelFor calls (e.g. a parallel MatMul inside a parallel
// attention head) deadlock-free even when every pool worker is busy.

// workerPool is a fixed set of goroutines consuming parallel-for jobs.
type workerPool struct {
	jobs    chan poolJob
	workers int
}

// poolJob is one helper invitation: run claims tiles until none remain.
type poolJob struct {
	run func()
	wg  *sync.WaitGroup
}

var (
	poolOnce sync.Once
	pool     *workerPool
)

// sharedPool lazily starts the worker goroutines on first use, sized to
// GOMAXPROCS at that moment. The submitting goroutine always participates,
// so the pool itself holds GOMAXPROCS-1 helpers.
func sharedPool() *workerPool {
	poolOnce.Do(func() {
		n := runtime.GOMAXPROCS(0) - 1
		if n < 0 {
			n = 0
		}
		pool = &workerPool{
			jobs:    make(chan poolJob, 4*(n+1)),
			workers: n,
		}
		for i := 0; i < n; i++ {
			go pool.worker()
		}
	})
	return pool
}

func (p *workerPool) worker() {
	for j := range p.jobs {
		j.run()
		j.wg.Done()
	}
}

// Workers returns the parallel width of the shared pool (including the
// submitting goroutine). Kernels use it to size tile grains.
func Workers() int { return sharedPool().workers + 1 }

// ParallelFor runs fn over the index range [0,n) split into tiles of size
// grain, distributing the tiles across the shared worker pool. fn is invoked
// with half-open tile bounds [lo,hi) and must be safe for concurrent
// invocation on disjoint ranges. The call returns only after every tile has
// completed. When the range fits a single tile (or grain >= n) fn runs
// inline on the caller with no synchronization at all.
func ParallelFor(n, grain int, fn func(lo, hi int)) {
	if n <= 0 {
		return
	}
	if grain < 1 {
		grain = 1
	}
	tiles := (n + grain - 1) / grain
	p := sharedPool()
	if tiles <= 1 || p.workers == 0 {
		fn(0, n)
		return
	}
	var next atomic.Int64
	run := func() {
		for {
			t := int(next.Add(1)) - 1
			if t >= tiles {
				return
			}
			lo := t * grain
			hi := lo + grain
			if hi > n {
				hi = n
			}
			fn(lo, hi)
		}
	}
	// Invite up to tiles-1 helpers; the caller covers the rest. Sends are
	// non-blocking: if the queue is full every idle worker already has work,
	// and the caller simply claims more tiles itself.
	helpers := p.workers
	if helpers > tiles-1 {
		helpers = tiles - 1
	}
	var wg sync.WaitGroup
	for i := 0; i < helpers; i++ {
		wg.Add(1)
		select {
		case p.jobs <- poolJob{run: run, wg: &wg}:
		default:
			wg.Done()
			i = helpers // queue full: stop inviting
		}
	}
	run()
	wg.Wait()
}
