package tensor

import (
	"math"
	"testing"
)

func TestRNGDeterministic(t *testing.T) {
	a := NewRNG(42)
	b := NewRNG(42)
	for i := 0; i < 100; i++ {
		if a.Uint64() != b.Uint64() {
			t.Fatal("same seed must produce same stream")
		}
	}
	c := NewRNG(43)
	same := true
	a = NewRNG(42)
	for i := 0; i < 10; i++ {
		if a.Uint64() != c.Uint64() {
			same = false
		}
	}
	if same {
		t.Error("different seeds should diverge")
	}
}

func TestRNGFloatRanges(t *testing.T) {
	r := NewRNG(1)
	for i := 0; i < 1000; i++ {
		if f := r.Float64(); f < 0 || f >= 1 {
			t.Fatalf("Float64 out of range: %v", f)
		}
		if f := r.Float32(); f < 0 || f >= 1 {
			t.Fatalf("Float32 out of range: %v", f)
		}
		if n := r.Intn(7); n < 0 || n >= 7 {
			t.Fatalf("Intn out of range: %d", n)
		}
		if v := r.Range(-2, 3); v < -2 || v >= 3 {
			t.Fatalf("Range out of range: %v", v)
		}
	}
}

func TestRNGIntnPanicsOnNonPositive(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	NewRNG(1).Intn(0)
}

func TestRNGNormMoments(t *testing.T) {
	r := NewRNG(7)
	const n = 20000
	var sum, sumSq float64
	for i := 0; i < n; i++ {
		v := r.Norm()
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean) > 0.05 {
		t.Errorf("Norm mean = %v, want ~0", mean)
	}
	if math.Abs(variance-1) > 0.05 {
		t.Errorf("Norm variance = %v, want ~1", variance)
	}
}

func TestRNGPerm(t *testing.T) {
	r := NewRNG(3)
	p := r.Perm(20)
	seen := make([]bool, 20)
	for _, v := range p {
		if v < 0 || v >= 20 || seen[v] {
			t.Fatalf("invalid permutation: %v", p)
		}
		seen[v] = true
	}
}

func TestRNGChoice(t *testing.T) {
	r := NewRNG(5)
	counts := make([]int, 3)
	w := []float64{0, 1, 3}
	for i := 0; i < 4000; i++ {
		counts[r.Choice(w)]++
	}
	if counts[0] != 0 {
		t.Errorf("zero-weight index chosen %d times", counts[0])
	}
	ratio := float64(counts[2]) / float64(counts[1])
	if ratio < 2.5 || ratio > 3.6 {
		t.Errorf("weight ratio ~3 expected, got %v", ratio)
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for all-zero weights")
			}
		}()
		r.Choice([]float64{0, 0})
	}()
}

func TestRNGSplitIndependence(t *testing.T) {
	r := NewRNG(9)
	s1 := r.Split()
	s2 := r.Split()
	if s1.Uint64() == s2.Uint64() {
		t.Error("split streams should differ")
	}
}

func TestRandnShapeAndSpread(t *testing.T) {
	r := NewRNG(11)
	x := Randn(r, 2, 50, 50)
	if x.Shape[0] != 50 || x.Shape[1] != 50 {
		t.Fatalf("shape = %v", x.Shape)
	}
	var sumSq float64
	for _, v := range x.Data {
		sumSq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumSq / float64(x.Size()))
	if std < 1.8 || std > 2.2 {
		t.Errorf("Randn std = %v, want ~2", std)
	}
}

func TestXavierUniformBounds(t *testing.T) {
	r := NewRNG(13)
	w := XavierUniform(r, 30, 50)
	if w.Shape[0] != 30 || w.Shape[1] != 50 {
		t.Fatalf("shape = %v", w.Shape)
	}
	limit := float32(math.Sqrt(6.0 / 80.0))
	for _, v := range w.Data {
		if v < -limit || v > limit {
			t.Fatalf("value %v outside Xavier limit %v", v, limit)
		}
	}
}

func TestKaimingNormalStd(t *testing.T) {
	r := NewRNG(17)
	w := KaimingNormal(r, 100, 200)
	var sumSq float64
	for _, v := range w.Data {
		sumSq += float64(v) * float64(v)
	}
	std := math.Sqrt(sumSq / float64(w.Size()))
	want := math.Sqrt(2.0 / 200.0)
	if math.Abs(std-want)/want > 0.1 {
		t.Errorf("Kaiming std = %v, want ~%v", std, want)
	}
}

func TestUniformBounds(t *testing.T) {
	r := NewRNG(19)
	u := Uniform(r, -3, -1, 100)
	for _, v := range u.Data {
		if v < -3 || v >= -1 {
			t.Fatalf("Uniform value %v outside [-3,-1)", v)
		}
	}
}
