package tensor

import (
	"math/bits"
	"sync"
)

// Scratch-buffer arena: sync.Pool-backed, size-classed free lists of float32
// buffers that the inference hot path draws intermediate tensors from, so
// steady-state forwards perform no large allocations. Capacities are rounded
// up to powers of two; a Get that finds its class empty allocates once, and
// the buffer then serves every subsequent request of that class after Put.
//
// Discipline: every GetScratch must be paired with a PutScratch once the
// values are dead, and a tensor must never be Put while any live tensor
// still aliases its Data. Tensors that escape to callers (layer outputs,
// final features) are allocated normally with New and never pooled.

// scratchClasses covers buffers up to 2^27 floats (512 MiB); larger requests
// fall through to plain allocation and are never pooled.
const scratchClasses = 28

var scratchPools [scratchClasses]sync.Pool

// GetScratch returns a zeroed scratch tensor of the given shape drawn from
// the arena. Pair with PutScratch.
func GetScratch(shape ...int) *Tensor {
	n := checkShape(shape)
	buf := getF32(n)
	return &Tensor{Data: buf, Shape: append([]int(nil), shape...)}
}

// GetScratchNoZero returns a scratch tensor whose contents are arbitrary —
// for destinations that are fully overwritten (Into-style kernels).
func GetScratchNoZero(shape ...int) *Tensor {
	n := checkShape(shape)
	buf := getF32NoZero(n)
	return &Tensor{Data: buf, Shape: append([]int(nil), shape...)}
}

// PutScratch returns tensors' storage to the arena. The tensors (and any
// views sharing their data) must not be used afterwards. nil entries are
// skipped.
func PutScratch(ts ...*Tensor) {
	for _, t := range ts {
		if t == nil {
			continue
		}
		putF32(t.Data)
		t.Data = nil
	}
}

// sizeClass returns the pool index whose buffers have cap 1<<class >= n.
func sizeClass(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n - 1))
}

// getF32 returns a zeroed float32 slice of length n from the arena.
func getF32(n int) []float32 {
	buf := getF32NoZero(n)
	for i := range buf {
		buf[i] = 0
	}
	return buf
}

// getF32NoZero returns a float32 slice of length n with arbitrary contents.
func getF32NoZero(n int) []float32 {
	c := sizeClass(n)
	if c >= scratchClasses {
		return make([]float32, n)
	}
	if v := scratchPools[c].Get(); v != nil {
		return (*v.(*[]float32))[:n]
	}
	return make([]float32, n, 1<<c)
}

// putF32 returns a slice's storage to its size class. Buffers whose capacity
// is not an exact class size (not pool-born) are dropped for the GC.
func putF32(buf []float32) {
	c := cap(buf)
	if c == 0 || c&(c-1) != 0 {
		return
	}
	cls := sizeClass(c)
	if cls >= scratchClasses {
		return
	}
	b := buf[:0]
	scratchPools[cls].Put(&b)
}
