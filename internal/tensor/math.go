package tensor

import (
	"fmt"
	"math"
)

// Add returns t+u elementwise as a new tensor.
func Add(t, u *Tensor) *Tensor {
	mustSameShape("Add", t, u)
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v + u.Data[i]
	}
	return out
}

// Sub returns t-u elementwise as a new tensor.
func Sub(t, u *Tensor) *Tensor {
	mustSameShape("Sub", t, u)
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v - u.Data[i]
	}
	return out
}

// Mul returns the elementwise (Hadamard) product as a new tensor.
func Mul(t, u *Tensor) *Tensor {
	mustSameShape("Mul", t, u)
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v * u.Data[i]
	}
	return out
}

// AddInPlace accumulates u into t: t += u.
func (t *Tensor) AddInPlace(u *Tensor) {
	mustSameShape("AddInPlace", t, u)
	for i, v := range u.Data {
		t.Data[i] += v
	}
}

// SubInPlace subtracts u from t: t -= u.
func (t *Tensor) SubInPlace(u *Tensor) {
	mustSameShape("SubInPlace", t, u)
	for i, v := range u.Data {
		t.Data[i] -= v
	}
}

// MulInPlace multiplies t by u elementwise: t *= u.
func (t *Tensor) MulInPlace(u *Tensor) {
	mustSameShape("MulInPlace", t, u)
	for i, v := range u.Data {
		t.Data[i] *= v
	}
}

// Scale returns s*t as a new tensor.
func Scale(t *Tensor, s float32) *Tensor {
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = v * s
	}
	return out
}

// ScaleInPlace multiplies every element of t by s.
func (t *Tensor) ScaleInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] *= s
	}
}

// AddScalarInPlace adds s to every element of t.
func (t *Tensor) AddScalarInPlace(s float32) {
	for i := range t.Data {
		t.Data[i] += s
	}
}

// Axpy accumulates a*x into t: t += a*x (BLAS axpy).
func (t *Tensor) Axpy(a float32, x *Tensor) {
	mustSameShape("Axpy", t, x)
	for i, v := range x.Data {
		t.Data[i] += a * v
	}
}

// AddRowVector adds a length-C vector to every row of an (R,C) matrix,
// in place. Used for bias addition.
func (t *Tensor) AddRowVector(v *Tensor) {
	if len(t.Shape) != 2 || len(v.Shape) != 1 || v.Shape[0] != t.Shape[1] {
		panic(fmt.Sprintf("tensor: AddRowVector %v += %v", t.Shape, v.Shape))
	}
	r, c := t.Shape[0], t.Shape[1]
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, b := range v.Data {
			row[j] += b
		}
	}
}

// Sum returns the sum of all elements.
func (t *Tensor) Sum() float32 {
	// Pairwise-ish accumulation in float64 for stability on long tensors.
	var s float64
	for _, v := range t.Data {
		s += float64(v)
	}
	return float32(s)
}

// Mean returns the arithmetic mean of all elements (0 for empty tensors).
func (t *Tensor) Mean() float32 {
	n := t.Size()
	if n == 0 {
		return 0
	}
	return float32(float64(t.Sum()) / float64(n))
}

// Max returns the maximum element. Panics on empty tensors.
func (t *Tensor) Max() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Max of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v > m {
			m = v
		}
	}
	return m
}

// Min returns the minimum element. Panics on empty tensors.
func (t *Tensor) Min() float32 {
	if len(t.Data) == 0 {
		panic("tensor: Min of empty tensor")
	}
	m := t.Data[0]
	for _, v := range t.Data[1:] {
		if v < m {
			m = v
		}
	}
	return m
}

// AbsMax returns max |t_i|, or 0 for an empty tensor.
func (t *Tensor) AbsMax() float32 {
	var m float32
	for _, v := range t.Data {
		if v < 0 {
			v = -v
		}
		if v > m {
			m = v
		}
	}
	return m
}

// Argmax returns the flat index of the maximum element.
func (t *Tensor) Argmax() int {
	if len(t.Data) == 0 {
		panic("tensor: Argmax of empty tensor")
	}
	best, bi := t.Data[0], 0
	for i, v := range t.Data[1:] {
		if v > best {
			best, bi = v, i+1
		}
	}
	return bi
}

// ArgmaxRows returns, for an (R,C) matrix, the argmax of each row.
func (t *Tensor) ArgmaxRows() []int {
	if len(t.Shape) != 2 {
		panic("tensor: ArgmaxRows on non-matrix")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := make([]int, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		best, bi := row[0], 0
		for j, v := range row[1:] {
			if v > best {
				best, bi = v, j+1
			}
		}
		out[i] = bi
	}
	return out
}

// SumRows returns a length-C vector holding the column sums of an (R,C)
// matrix. Used for bias gradients.
func (t *Tensor) SumRows() *Tensor {
	if len(t.Shape) != 2 {
		panic("tensor: SumRows on non-matrix")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := New(c)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		for j, v := range row {
			out.Data[j] += v
		}
	}
	return out
}

// Dot returns the inner product of two same-shaped tensors.
func Dot(t, u *Tensor) float32 {
	mustSameShape("Dot", t, u)
	var s float64
	for i, v := range t.Data {
		s += float64(v) * float64(u.Data[i])
	}
	return float32(s)
}

// Norm2 returns the Euclidean norm of t.
func (t *Tensor) Norm2() float32 {
	var s float64
	for _, v := range t.Data {
		s += float64(v) * float64(v)
	}
	return float32(math.Sqrt(s))
}

// Apply returns a new tensor with f applied to every element.
func Apply(t *Tensor, f func(float32) float32) *Tensor {
	out := New(t.Shape...)
	for i, v := range t.Data {
		out.Data[i] = f(v)
	}
	return out
}

// ApplyInPlace applies f to every element of t.
func (t *Tensor) ApplyInPlace(f func(float32) float32) {
	for i, v := range t.Data {
		t.Data[i] = f(v)
	}
}

// Clamp returns a new tensor with every element clamped to [lo, hi].
func Clamp(t *Tensor, lo, hi float32) *Tensor {
	return Apply(t, func(v float32) float32 {
		if v < lo {
			return lo
		}
		if v > hi {
			return hi
		}
		return v
	})
}

// SoftmaxRows applies a numerically-stable softmax to each row of an (R,C)
// matrix, returning a new tensor.
func SoftmaxRows(t *Tensor) *Tensor {
	out := New(t.Shape...)
	SoftmaxRowsInto(out, t)
	return out
}

// SoftmaxRowsInto writes the row softmax of t into out. out must have t's
// shape; out == t computes the softmax in place.
func SoftmaxRowsInto(out, t *Tensor) {
	if len(t.Shape) != 2 {
		panic("tensor: SoftmaxRows on non-matrix")
	}
	mustSameShape("SoftmaxRowsInto", out, t)
	r, c := t.Shape[0], t.Shape[1]
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		o := out.Data[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for j, v := range row {
			e := math.Exp(float64(v - m))
			o[j] = float32(e)
			sum += e
		}
		inv := float32(1 / sum)
		for j := range o {
			o[j] *= inv
		}
	}
}

// LogSumExpRows returns, for each row of an (R,C) matrix, log(sum(exp(row))),
// computed stably.
func LogSumExpRows(t *Tensor) []float32 {
	if len(t.Shape) != 2 {
		panic("tensor: LogSumExpRows on non-matrix")
	}
	r, c := t.Shape[0], t.Shape[1]
	out := make([]float32, r)
	for i := 0; i < r; i++ {
		row := t.Data[i*c : (i+1)*c]
		m := row[0]
		for _, v := range row[1:] {
			if v > m {
				m = v
			}
		}
		var sum float64
		for _, v := range row {
			sum += math.Exp(float64(v - m))
		}
		out[i] = m + float32(math.Log(sum))
	}
	return out
}
