package tensor

import (
	"fmt"

	"itask/internal/kernels"
)

// GEMM family. All three product forms (MatMul, MatMulT, TMatMul) share one
// structure: the output rows are split into tiles and dispatched onto the
// persistent worker pool (pool.go), and each tile runs a register-tiled
// kernel built from the fused dot/axpy micro-kernels in internal/kernels —
// a 4-wide k-unroll (Axpy4) for the row-streaming forms and a 4-wide
// n-unroll (Dot4) for the transposed form. The kernels are dense: there is
// deliberately no zero-skip branch (a data-dependent branch in the inner
// loop defeats both the hardware prefetcher and the SIMD micro-kernels, and
// none of the call sites feed provably sparse operands).

// parallelThreshold is the matrix size (in multiply-adds) above which a
// product is spread across the worker pool. Below it dispatch overhead
// dominates and tiles run inline on the caller.
const parallelThreshold = 1 << 16

// dispatchRows is the shared tile dispatcher: it runs fn over row range
// [0,m) either inline (small products) or tiled across the worker pool,
// with tile grain sized for ~2 tiles per worker so the pool's tile stealing
// can rebalance uneven progress.
func dispatchRows(m, work int, fn func(lo, hi int)) {
	if work < parallelThreshold || m < 2 {
		fn(0, m)
		return
	}
	grain := m / (2 * Workers())
	// Round to a multiple of 4 so tiles align with the 4-row micro-kernels.
	grain = (grain + 3) &^ 3
	if grain < 4 {
		grain = 4
	}
	ParallelFor(m, grain, fn)
}

// MatMul returns a @ b for a (M,K) matrix a and (K,N) matrix b.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := mmDims(a, b)
	out := New(m, n)
	dispatchRows(m, m*k*n, func(lo, hi int) {
		matMulRows(out.Data, a.Data, b.Data, lo, hi, k, n)
	})
	return out
}

// MatMulInto computes out = a @ b, reusing out's storage.
// out must already have shape (M,N).
func MatMulInto(out, a, b *Tensor) {
	m, k, n := mmDims(a, b)
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want (%d,%d)", out.Shape, m, n))
	}
	dispatchRows(m, m*k*n, func(lo, hi int) {
		matMulRows(out.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

func mmDims(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul on shapes %v, %v (need matrices)", a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v @ %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

// matMulRows computes rows [lo,hi) of out = a @ b with an ikj loop: each
// output row accumulates k axpy updates over contiguous rows of b, taken
// four at a time so one load+store pass over the output row carries four
// multiply-add streams. Output rows are fully overwritten.
func matMulRows(out, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		oi := out[i*n : (i+1)*n]
		for j := range oi {
			oi[j] = 0
		}
		ai := a[i*k : (i+1)*k]
		p := 0
		for ; p+4 <= k; p += 4 {
			alphas := [4]float32{ai[p], ai[p+1], ai[p+2], ai[p+3]}
			kernels.Axpy4(&alphas, b[p*n:], b[(p+1)*n:], b[(p+2)*n:], b[(p+3)*n:], oi)
		}
		for ; p < k; p++ {
			kernels.Axpy(ai[p], b[p*n:(p+1)*n], oi)
		}
	}
}

// MatMulT returns a @ bᵀ for a (M,K) matrix a and (N,K) matrix b.
// This form has unit-stride access for both operands and is the natural
// layout for Linear layers whose weight is stored (out,in).
func MatMulT(a, b *Tensor) *Tensor {
	m, k, n := mmtDims(a, b)
	out := New(m, n)
	dispatchRows(m, m*k*n, func(lo, hi int) {
		matMulTRows(out.Data, a.Data, b.Data, lo, hi, k, n)
	})
	return out
}

// MatMulTInto computes out = a @ bᵀ, reusing out's storage.
// out must already have shape (M,N); it is fully overwritten.
func MatMulTInto(out, a, b *Tensor) {
	m, k, n := mmtDims(a, b)
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulTInto out shape %v, want (%d,%d)", out.Shape, m, n))
	}
	dispatchRows(m, m*k*n, func(lo, hi int) {
		matMulTRows(out.Data, a.Data, b.Data, lo, hi, k, n)
	})
}

func mmtDims(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT on shapes %v, %v", a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[0]
}

// matMulTRows computes rows [lo,hi) of out = a @ bᵀ as dot products, four
// output columns at a time so each pass loads the a-row once against four
// rows of b.
func matMulTRows(out, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*n : (i+1)*n]
		j := 0
		for ; j+4 <= n; j += 4 {
			s0, s1, s2, s3 := kernels.Dot4(ai, b[j*k:], b[(j+1)*k:], b[(j+2)*k:], b[(j+3)*k:])
			oi[j], oi[j+1], oi[j+2], oi[j+3] = s0, s1, s2, s3
		}
		for ; j < n; j++ {
			oi[j] = kernels.Dot(ai, b[j*k:(j+1)*k])
		}
	}
}

// TMatMul returns aᵀ @ b for a (K,M) matrix a and (K,N) matrix b, producing
// (M,N). This is the shape needed for weight gradients (xᵀ @ dy).
func TMatMul(a, b *Tensor) *Tensor {
	k, m, n := tmmDims(a, b)
	out := New(m, n)
	dispatchRows(m, m*k*n, func(lo, hi int) {
		tMatMulRows(out.Data, a.Data, b.Data, lo, hi, k, m, n)
	})
	return out
}

// TMatMulInto computes out = aᵀ @ b, reusing out's storage.
// out must already have shape (M,N); it is fully overwritten.
func TMatMulInto(out, a, b *Tensor) {
	k, m, n := tmmDims(a, b)
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: TMatMulInto out shape %v, want (%d,%d)", out.Shape, m, n))
	}
	dispatchRows(m, m*k*n, func(lo, hi int) {
		tMatMulRows(out.Data, a.Data, b.Data, lo, hi, k, m, n)
	})
}

func tmmDims(a, b *Tensor) (k, m, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: TMatMul on shapes %v, %v", a.Shape, b.Shape))
	}
	if a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch %vᵀ @ %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

// tMatMulRows computes output rows [lo,hi) of out = aᵀ @ b. Output row i
// accumulates a[p,i]*b[p,:] over p; the coefficients are strided loads but
// both streamed operands (b rows, out row) stay unit-stride, and four p
// steps share one pass over the output row.
func tMatMulRows(out, a, b []float32, lo, hi, k, m, n int) {
	for i := lo; i < hi; i++ {
		oi := out[i*n : (i+1)*n]
		for j := range oi {
			oi[j] = 0
		}
		p := 0
		for ; p+4 <= k; p += 4 {
			alphas := [4]float32{a[p*m+i], a[(p+1)*m+i], a[(p+2)*m+i], a[(p+3)*m+i]}
			kernels.Axpy4(&alphas, b[p*n:], b[(p+1)*n:], b[(p+2)*n:], b[(p+3)*n:], oi)
		}
		for ; p < k; p++ {
			kernels.Axpy(a[p*m+i], b[p*n:(p+1)*n], oi)
		}
	}
}

// MatVec returns a @ x for a (M,N) matrix and length-N vector, as a
// length-M vector.
func MatVec(a, x *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(x.Shape) != 1 || a.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("tensor: MatVec %v @ %v", a.Shape, x.Shape))
	}
	out := New(a.Shape[0])
	matVecInto(out.Data, a.Data, x.Data, a.Shape[0], a.Shape[1])
	return out
}

// MatVecInto computes out = a @ x, reusing out's storage (length M).
func MatVecInto(out, a, x *Tensor) {
	if len(a.Shape) != 2 || len(x.Shape) != 1 || a.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("tensor: MatVecInto %v @ %v", a.Shape, x.Shape))
	}
	if len(out.Shape) != 1 || out.Shape[0] != a.Shape[0] {
		panic(fmt.Sprintf("tensor: MatVecInto out shape %v, want (%d)", out.Shape, a.Shape[0]))
	}
	matVecInto(out.Data, a.Data, x.Data, a.Shape[0], a.Shape[1])
}

// matVecInto computes out = a @ x four rows at a time (the vector is loaded
// once per 4-row block), parallelized across row tiles for large matrices.
func matVecInto(out, a, x []float32, m, n int) {
	dispatchRows(m, m*n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			out[i], out[i+1], out[i+2], out[i+3] =
				kernels.Dot4(x, a[i*n:], a[(i+1)*n:], a[(i+2)*n:], a[(i+3)*n:])
		}
		for ; i < hi; i++ {
			out[i] = kernels.Dot(x, a[i*n:(i+1)*n])
		}
	})
}

// Outer returns the outer product x ⊗ y of two vectors as an (len(x),len(y))
// matrix.
func Outer(x, y *Tensor) *Tensor {
	if len(x.Shape) != 1 || len(y.Shape) != 1 {
		panic(fmt.Sprintf("tensor: Outer on shapes %v, %v", x.Shape, y.Shape))
	}
	out := New(x.Shape[0], y.Shape[0])
	outerInto(out.Data, x.Data, y.Data, x.Shape[0], y.Shape[0])
	return out
}

// OuterInto computes out = x ⊗ y, reusing out's storage (len(x),len(y));
// out is fully overwritten.
func OuterInto(out, x, y *Tensor) {
	if len(x.Shape) != 1 || len(y.Shape) != 1 {
		panic(fmt.Sprintf("tensor: OuterInto on shapes %v, %v", x.Shape, y.Shape))
	}
	if len(out.Shape) != 2 || out.Shape[0] != x.Shape[0] || out.Shape[1] != y.Shape[0] {
		panic(fmt.Sprintf("tensor: OuterInto out shape %v, want (%d,%d)", out.Shape, x.Shape[0], y.Shape[0]))
	}
	outerInto(out.Data, x.Data, y.Data, x.Shape[0], y.Shape[0])
}

// outerInto writes x ⊗ y four rows at a time (each pass over y fills four
// output rows), parallelized across row tiles for large products.
func outerInto(out, x, y []float32, m, n int) {
	dispatchRows(m, m*n, func(lo, hi int) {
		i := lo
		for ; i+4 <= hi; i += 4 {
			r0 := out[i*n : (i+1)*n]
			r1 := out[(i+1)*n : (i+2)*n]
			r2 := out[(i+2)*n : (i+3)*n]
			r3 := out[(i+3)*n : (i+4)*n]
			x0, x1, x2, x3 := x[i], x[i+1], x[i+2], x[i+3]
			for j, yv := range y {
				r0[j] = x0 * yv
				r1[j] = x1 * yv
				r2[j] = x2 * yv
				r3[j] = x3 * yv
			}
		}
		for ; i < hi; i++ {
			row := out[i*n : (i+1)*n]
			xv := x[i]
			for j, yv := range y {
				row[j] = xv * yv
			}
		}
	})
}
