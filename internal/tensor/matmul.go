package tensor

import (
	"fmt"
	"runtime"
	"sync"
)

// parallelThreshold is the matrix-size (in multiply-adds) above which MatMul
// spreads rows across goroutines. Below it the goroutine overhead dominates.
const parallelThreshold = 1 << 16

// MatMul returns a @ b for a (M,K) matrix a and (K,N) matrix b.
// The kernel is an ikj loop with the inner loop over contiguous rows of b,
// which keeps both streams sequential and lets the compiler vectorize.
// Large products are parallelized across rows of a.
func MatMul(a, b *Tensor) *Tensor {
	m, k, n := mmDims(a, b)
	out := New(m, n)
	matMulInto(out.Data, a.Data, b.Data, m, k, n)
	return out
}

// MatMulInto computes out = a @ b, reusing out's storage.
// out must already have shape (M,N).
func MatMulInto(out, a, b *Tensor) {
	m, k, n := mmDims(a, b)
	if len(out.Shape) != 2 || out.Shape[0] != m || out.Shape[1] != n {
		panic(fmt.Sprintf("tensor: MatMulInto out shape %v, want (%d,%d)", out.Shape, m, n))
	}
	out.Zero()
	matMulInto(out.Data, a.Data, b.Data, m, k, n)
}

func mmDims(a, b *Tensor) (m, k, n int) {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMul on shapes %v, %v (need matrices)", a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: MatMul inner dim mismatch %v @ %v", a.Shape, b.Shape))
	}
	return a.Shape[0], a.Shape[1], b.Shape[1]
}

func matMulInto(out, a, b []float32, m, k, n int) {
	work := m * k * n
	if work < parallelThreshold || m < 2 {
		matMulRows(out, a, b, 0, m, k, n)
		return
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > m {
		nw = m
	}
	var wg sync.WaitGroup
	chunk := (m + nw - 1) / nw
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulRows(out, a, b, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
}

// matMulRows computes rows [lo,hi) of out = a @ b.
func matMulRows(out, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		oi := out[i*n : (i+1)*n]
		ai := a[i*k : (i+1)*k]
		for p, av := range ai {
			if av == 0 {
				continue
			}
			bp := b[p*n : (p+1)*n]
			for j, bv := range bp {
				oi[j] += av * bv
			}
		}
	}
}

// MatMulT returns a @ bᵀ for a (M,K) matrix a and (N,K) matrix b.
// This form has unit-stride access for both operands and is the natural
// layout for Linear layers whose weight is stored (out,in).
func MatMulT(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: MatMulT on shapes %v, %v", a.Shape, b.Shape))
	}
	if a.Shape[1] != b.Shape[1] {
		panic(fmt.Sprintf("tensor: MatMulT inner dim mismatch %v @ %vᵀ", a.Shape, b.Shape))
	}
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[0]
	out := New(m, n)
	work := m * k * n
	if work < parallelThreshold || m < 2 {
		matMulTRows(out.Data, a.Data, b.Data, 0, m, k, n)
		return out
	}
	nw := runtime.GOMAXPROCS(0)
	if nw > m {
		nw = m
	}
	var wg sync.WaitGroup
	chunk := (m + nw - 1) / nw
	for lo := 0; lo < m; lo += chunk {
		hi := lo + chunk
		if hi > m {
			hi = m
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			matMulTRows(out.Data, a.Data, b.Data, lo, hi, k, n)
		}(lo, hi)
	}
	wg.Wait()
	return out
}

func matMulTRows(out, a, b []float32, lo, hi, k, n int) {
	for i := lo; i < hi; i++ {
		ai := a[i*k : (i+1)*k]
		oi := out[i*n : (i+1)*n]
		for j := 0; j < n; j++ {
			bj := b[j*k : (j+1)*k]
			var s float32
			for p, av := range ai {
				s += av * bj[p]
			}
			oi[j] = s
		}
	}
}

// TMatMul returns aᵀ @ b for a (K,M) matrix a and (K,N) matrix b, producing
// (M,N). This is the shape needed for weight gradients (xᵀ @ dy).
func TMatMul(a, b *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(b.Shape) != 2 {
		panic(fmt.Sprintf("tensor: TMatMul on shapes %v, %v", a.Shape, b.Shape))
	}
	if a.Shape[0] != b.Shape[0] {
		panic(fmt.Sprintf("tensor: TMatMul inner dim mismatch %vᵀ @ %v", a.Shape, b.Shape))
	}
	k, m, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	// out[i,j] = sum_p a[p,i]*b[p,j]; iterate p outer so both reads stream.
	for p := 0; p < k; p++ {
		ap := a.Data[p*m : (p+1)*m]
		bp := b.Data[p*n : (p+1)*n]
		for i, av := range ap {
			if av == 0 {
				continue
			}
			oi := out.Data[i*n : (i+1)*n]
			for j, bv := range bp {
				oi[j] += av * bv
			}
		}
	}
	return out
}

// MatVec returns a @ x for a (M,N) matrix and length-N vector, as a
// length-M vector.
func MatVec(a, x *Tensor) *Tensor {
	if len(a.Shape) != 2 || len(x.Shape) != 1 || a.Shape[1] != x.Shape[0] {
		panic(fmt.Sprintf("tensor: MatVec %v @ %v", a.Shape, x.Shape))
	}
	m, n := a.Shape[0], a.Shape[1]
	out := New(m)
	for i := 0; i < m; i++ {
		row := a.Data[i*n : (i+1)*n]
		var s float32
		for j, v := range row {
			s += v * x.Data[j]
		}
		out.Data[i] = s
	}
	return out
}

// Outer returns the outer product x ⊗ y of two vectors as an (len(x),len(y))
// matrix.
func Outer(x, y *Tensor) *Tensor {
	if len(x.Shape) != 1 || len(y.Shape) != 1 {
		panic(fmt.Sprintf("tensor: Outer on shapes %v, %v", x.Shape, y.Shape))
	}
	m, n := x.Shape[0], y.Shape[0]
	out := New(m, n)
	for i, xv := range x.Data {
		row := out.Data[i*n : (i+1)*n]
		for j, yv := range y.Data {
			row[j] = xv * yv
		}
	}
	return out
}
