package tensor

import (
	"math"
	"testing"
	"testing/quick"
)

func TestNewShapes(t *testing.T) {
	cases := []struct {
		shape []int
		size  int
	}{
		{nil, 1},
		{[]int{0}, 0},
		{[]int{5}, 5},
		{[]int{2, 3}, 6},
		{[]int{2, 3, 4}, 24},
		{[]int{1, 1, 1, 1}, 1},
	}
	for _, c := range cases {
		tt := New(c.shape...)
		if tt.Size() != c.size {
			t.Errorf("New(%v).Size() = %d, want %d", c.shape, tt.Size(), c.size)
		}
		if len(tt.Data) != c.size {
			t.Errorf("New(%v) len(Data) = %d, want %d", c.shape, len(tt.Data), c.size)
		}
		for _, v := range tt.Data {
			if v != 0 {
				t.Errorf("New(%v) not zero-filled", c.shape)
			}
		}
	}
}

func TestNewNegativeDimPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic for negative dimension")
		}
	}()
	New(2, -1)
}

func TestAtSetRoundTrip(t *testing.T) {
	tt := New(3, 4, 5)
	k := float32(0)
	for i := 0; i < 3; i++ {
		for j := 0; j < 4; j++ {
			for l := 0; l < 5; l++ {
				tt.Set(k, i, j, l)
				k++
			}
		}
	}
	// Row-major: flat index should be i*20 + j*5 + l.
	if got := tt.At(1, 2, 3); got != float32(1*20+2*5+3) {
		t.Errorf("At(1,2,3) = %v, want %v", got, 1*20+2*5+3)
	}
	if got := tt.Data[33]; got != 33 {
		t.Errorf("Data[33] = %v, want 33", got)
	}
}

func TestAtOutOfRangePanics(t *testing.T) {
	tt := New(2, 2)
	for _, idx := range [][]int{{2, 0}, {0, 2}, {-1, 0}, {0}} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("expected panic for index %v", idx)
				}
			}()
			tt.At(idx...)
		}()
	}
}

func TestFromSlice(t *testing.T) {
	d := []float32{1, 2, 3, 4, 5, 6}
	tt := FromSlice(d, 2, 3)
	if tt.At(1, 2) != 6 {
		t.Errorf("At(1,2) = %v, want 6", tt.At(1, 2))
	}
	// Shared backing store.
	d[0] = 42
	if tt.At(0, 0) != 42 {
		t.Error("FromSlice should share backing data")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for wrong-size slice")
			}
		}()
		FromSlice(d, 7)
	}()
}

func TestCloneIsDeep(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := a.Clone()
	b.Data[0] = 99
	if a.Data[0] != 1 {
		t.Error("Clone is not deep")
	}
	if !a.SameShape(b) {
		t.Error("Clone changed shape")
	}
}

func TestReshapeSharesData(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := a.Reshape(3, 2)
	b.Data[5] = 60
	if a.At(1, 2) != 60 {
		t.Error("Reshape should share data")
	}
	func() {
		defer func() {
			if recover() == nil {
				t.Error("expected panic for size-changing reshape")
			}
		}()
		a.Reshape(4, 2)
	}()
}

func TestRowAndSlice2D(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 3, 2)
	r := a.Row(1)
	if r.Shape[0] != 2 || r.Data[0] != 3 || r.Data[1] != 4 {
		t.Errorf("Row(1) = %v", r.Data)
	}
	s := a.Slice2D(1, 3)
	if s.Shape[0] != 2 || s.At(1, 1) != 6 {
		t.Errorf("Slice2D(1,3) wrong: %v", s)
	}
	// Views share data.
	r.Data[0] = -3
	if a.At(1, 0) != -3 {
		t.Error("Row should be a view")
	}
}

func TestTranspose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	at := a.Transpose()
	want := FromSlice([]float32{1, 4, 2, 5, 3, 6}, 3, 2)
	if !at.Equal(want) {
		t.Errorf("Transpose = %v, want %v", at, want)
	}
}

func TestTransposeInvolutionProperty(t *testing.T) {
	rng := NewRNG(7)
	f := func(rSeed, cSeed uint8) bool {
		r := int(rSeed%17) + 1
		c := int(cSeed%19) + 1
		a := Randn(rng, 1, r, c)
		return a.Transpose().Transpose().Equal(a)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestAddSubMul(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4}, 2, 2)
	b := FromSlice([]float32{10, 20, 30, 40}, 2, 2)
	if got := Add(a, b); !got.Equal(FromSlice([]float32{11, 22, 33, 44}, 2, 2)) {
		t.Errorf("Add = %v", got)
	}
	if got := Sub(b, a); !got.Equal(FromSlice([]float32{9, 18, 27, 36}, 2, 2)) {
		t.Errorf("Sub = %v", got)
	}
	if got := Mul(a, b); !got.Equal(FromSlice([]float32{10, 40, 90, 160}, 2, 2)) {
		t.Errorf("Mul = %v", got)
	}
}

func TestShapeMismatchPanics(t *testing.T) {
	a := New(2, 2)
	b := New(2, 3)
	for name, f := range map[string]func(){
		"Add":        func() { Add(a, b) },
		"Sub":        func() { Sub(a, b) },
		"Mul":        func() { Mul(a, b) },
		"AddInPlace": func() { a.AddInPlace(b) },
		"Dot":        func() { Dot(a, b) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected shape-mismatch panic", name)
				}
			}()
			f()
		}()
	}
}

func TestInPlaceOps(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	a.AddInPlace(FromSlice([]float32{1, 1, 1}, 3))
	a.ScaleInPlace(2)
	a.AddScalarInPlace(-1)
	want := FromSlice([]float32{3, 5, 7}, 3)
	if !a.Equal(want) {
		t.Errorf("in-place chain = %v, want %v", a, want)
	}
	a.Axpy(2, FromSlice([]float32{1, 0, -1}, 3))
	want = FromSlice([]float32{5, 5, 5}, 3)
	if !a.Equal(want) {
		t.Errorf("Axpy = %v, want %v", a, want)
	}
}

func TestAddRowVector(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	a.AddRowVector(FromSlice([]float32{10, 20, 30}, 3))
	want := FromSlice([]float32{11, 22, 33, 14, 25, 36}, 2, 3)
	if !a.Equal(want) {
		t.Errorf("AddRowVector = %v", a)
	}
}

func TestReductions(t *testing.T) {
	a := FromSlice([]float32{3, -1, 4, -1, 5}, 5)
	if a.Sum() != 10 {
		t.Errorf("Sum = %v", a.Sum())
	}
	if a.Mean() != 2 {
		t.Errorf("Mean = %v", a.Mean())
	}
	if a.Max() != 5 || a.Min() != -1 || a.AbsMax() != 5 {
		t.Errorf("Max/Min/AbsMax = %v/%v/%v", a.Max(), a.Min(), a.AbsMax())
	}
	if a.Argmax() != 4 {
		t.Errorf("Argmax = %d", a.Argmax())
	}
}

func TestArgmaxRows(t *testing.T) {
	a := FromSlice([]float32{1, 9, 2, 7, 3, 1}, 2, 3)
	got := a.ArgmaxRows()
	if got[0] != 1 || got[1] != 0 {
		t.Errorf("ArgmaxRows = %v", got)
	}
}

func TestSumRows(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	got := a.SumRows()
	if !got.Equal(FromSlice([]float32{5, 7, 9}, 3)) {
		t.Errorf("SumRows = %v", got)
	}
}

func TestSoftmaxRows(t *testing.T) {
	a := FromSlice([]float32{0, 0, 1000, 1000}, 2, 2) // large values: stability check
	s := SoftmaxRows(a)
	for i := 0; i < 2; i++ {
		row := s.Data[i*2 : (i+1)*2]
		sum := row[0] + row[1]
		if math.Abs(float64(sum)-1) > 1e-5 {
			t.Errorf("row %d sums to %v", i, sum)
		}
		if math.Abs(float64(row[0])-0.5) > 1e-5 {
			t.Errorf("row %d expected uniform, got %v", i, row)
		}
	}
}

func TestSoftmaxRowsSumToOneProperty(t *testing.T) {
	rng := NewRNG(11)
	f := func(rs, cs uint8) bool {
		r := int(rs%8) + 1
		c := int(cs%16) + 1
		a := Randn(rng, 5, r, c)
		s := SoftmaxRows(a)
		for i := 0; i < r; i++ {
			var sum float64
			for j := 0; j < c; j++ {
				v := s.At(i, j)
				if v < 0 || v > 1 {
					return false
				}
				sum += float64(v)
			}
			if math.Abs(sum-1) > 1e-4 {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 100}); err != nil {
		t.Error(err)
	}
}

func TestLogSumExpRows(t *testing.T) {
	a := FromSlice([]float32{0, 0}, 1, 2)
	got := LogSumExpRows(a)[0]
	want := float32(math.Log(2))
	if math.Abs(float64(got-want)) > 1e-6 {
		t.Errorf("LogSumExp = %v, want %v", got, want)
	}
	// Stability with huge values.
	b := FromSlice([]float32{1000, 1000}, 1, 2)
	got = LogSumExpRows(b)[0]
	want = 1000 + float32(math.Log(2))
	if math.Abs(float64(got-want)) > 1e-3 {
		t.Errorf("LogSumExp large = %v, want %v", got, want)
	}
}

func TestApplyAndClamp(t *testing.T) {
	a := FromSlice([]float32{-2, -1, 0, 1, 2}, 5)
	c := Clamp(a, -1, 1)
	if !c.Equal(FromSlice([]float32{-1, -1, 0, 1, 1}, 5)) {
		t.Errorf("Clamp = %v", c)
	}
	sq := Apply(a, func(v float32) float32 { return v * v })
	if !sq.Equal(FromSlice([]float32{4, 1, 0, 1, 4}, 5)) {
		t.Errorf("Apply = %v", sq)
	}
}

func TestAllClose(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3}, 3)
	b := FromSlice([]float32{1.0001, 2.0001, 3.0001}, 3)
	if !a.AllClose(b, 1e-3, 1e-3) {
		t.Error("AllClose should accept small differences")
	}
	if a.AllClose(FromSlice([]float32{1, 2, 4}, 3), 1e-3, 1e-3) {
		t.Error("AllClose should reject large differences")
	}
	if a.AllClose(New(4), 1, 1) {
		t.Error("AllClose should reject shape mismatch")
	}
}

func TestNorm2AndDot(t *testing.T) {
	a := FromSlice([]float32{3, 4}, 2)
	if a.Norm2() != 5 {
		t.Errorf("Norm2 = %v", a.Norm2())
	}
	b := FromSlice([]float32{1, 2}, 2)
	if Dot(a, b) != 11 {
		t.Errorf("Dot = %v", Dot(a, b))
	}
}
