package tensor

import (
	"testing"
	"testing/quick"
)

// matMulNaive is an obviously-correct reference implementation used to
// validate the optimized kernels.
func matMulNaive(a, b *Tensor) *Tensor {
	m, k, n := a.Shape[0], a.Shape[1], b.Shape[1]
	out := New(m, n)
	for i := 0; i < m; i++ {
		for j := 0; j < n; j++ {
			var s float32
			for p := 0; p < k; p++ {
				s += a.At(i, p) * b.At(p, j)
			}
			out.Set(s, i, j)
		}
	}
	return out
}

func TestMatMulSmall(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	b := FromSlice([]float32{7, 8, 9, 10, 11, 12}, 3, 2)
	got := MatMul(a, b)
	want := FromSlice([]float32{58, 64, 139, 154}, 2, 2)
	if !got.Equal(want) {
		t.Errorf("MatMul = %v, want %v", got, want)
	}
}

func TestMatMulIdentity(t *testing.T) {
	rng := NewRNG(1)
	a := Randn(rng, 1, 7, 7)
	id := New(7, 7)
	for i := 0; i < 7; i++ {
		id.Set(1, i, i)
	}
	if !MatMul(a, id).AllClose(a, 1e-6, 1e-6) {
		t.Error("A @ I != A")
	}
	if !MatMul(id, a).AllClose(a, 1e-6, 1e-6) {
		t.Error("I @ A != A")
	}
}

func TestMatMulMatchesNaiveProperty(t *testing.T) {
	rng := NewRNG(2)
	f := func(ms, ks, ns uint8) bool {
		m := int(ms%12) + 1
		k := int(ks%12) + 1
		n := int(ns%12) + 1
		a := Randn(rng, 1, m, k)
		b := Randn(rng, 1, k, n)
		return MatMul(a, b).AllClose(matMulNaive(a, b), 1e-4, 1e-4)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 60}); err != nil {
		t.Error(err)
	}
}

func TestMatMulParallelPath(t *testing.T) {
	// Large enough to exceed parallelThreshold and exercise the goroutine
	// splitting; verify against the naive kernel.
	rng := NewRNG(3)
	a := Randn(rng, 1, 64, 48)
	b := Randn(rng, 1, 48, 40)
	if !MatMul(a, b).AllClose(matMulNaive(a, b), 1e-3, 1e-3) {
		t.Error("parallel MatMul diverges from naive reference")
	}
}

func TestMatMulT(t *testing.T) {
	rng := NewRNG(4)
	a := Randn(rng, 1, 5, 9)
	b := Randn(rng, 1, 6, 9) // (N,K)
	got := MatMulT(a, b)
	want := matMulNaive(a, b.Transpose())
	if !got.AllClose(want, 1e-4, 1e-4) {
		t.Error("MatMulT != A @ Bᵀ")
	}
}

func TestMatMulTParallelPath(t *testing.T) {
	rng := NewRNG(41)
	a := Randn(rng, 1, 80, 64)
	b := Randn(rng, 1, 72, 64)
	got := MatMulT(a, b)
	want := matMulNaive(a, b.Transpose())
	if !got.AllClose(want, 1e-3, 1e-3) {
		t.Error("parallel MatMulT diverges")
	}
}

func TestTMatMul(t *testing.T) {
	rng := NewRNG(5)
	a := Randn(rng, 1, 9, 5) // (K,M)
	b := Randn(rng, 1, 9, 7) // (K,N)
	got := TMatMul(a, b)
	want := matMulNaive(a.Transpose(), b)
	if !got.AllClose(want, 1e-4, 1e-4) {
		t.Error("TMatMul != Aᵀ @ B")
	}
}

func TestMatMulInto(t *testing.T) {
	rng := NewRNG(6)
	a := Randn(rng, 1, 4, 3)
	b := Randn(rng, 1, 3, 5)
	out := Full(99, 4, 5) // pre-filled garbage must be overwritten
	MatMulInto(out, a, b)
	if !out.AllClose(matMulNaive(a, b), 1e-5, 1e-5) {
		t.Error("MatMulInto wrong result")
	}
}

func TestMatMulDimMismatchPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"MatMul":  func() { MatMul(New(2, 3), New(4, 5)) },
		"MatMulT": func() { MatMulT(New(2, 3), New(4, 5)) },
		"TMatMul": func() { TMatMul(New(2, 3), New(4, 5)) },
		"MatVec":  func() { MatVec(New(2, 3), New(4)) },
		"rank":    func() { MatMul(New(2), New(2, 2)) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestMatVec(t *testing.T) {
	a := FromSlice([]float32{1, 2, 3, 4, 5, 6}, 2, 3)
	x := FromSlice([]float32{1, 0, -1}, 3)
	got := MatVec(a, x)
	want := FromSlice([]float32{-2, -2}, 2)
	if !got.Equal(want) {
		t.Errorf("MatVec = %v, want %v", got, want)
	}
}

func TestOuter(t *testing.T) {
	x := FromSlice([]float32{1, 2}, 2)
	y := FromSlice([]float32{3, 4, 5}, 3)
	got := Outer(x, y)
	want := FromSlice([]float32{3, 4, 5, 6, 8, 10}, 2, 3)
	if !got.Equal(want) {
		t.Errorf("Outer = %v, want %v", got, want)
	}
}

func BenchmarkMatMul128(b *testing.B) {
	rng := NewRNG(1)
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMul(x, y)
	}
}

func BenchmarkMatMulT128(b *testing.B) {
	rng := NewRNG(1)
	x := Randn(rng, 1, 128, 128)
	y := Randn(rng, 1, 128, 128)
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		MatMulT(x, y)
	}
}
