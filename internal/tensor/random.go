package tensor

import "math"

// RNG is a small, fast, deterministic random number generator
// (SplitMix64 core). Every stochastic component in iTask takes an explicit
// *RNG so that experiments are exactly reproducible from a seed; the global
// math/rand state is never used.
type RNG struct {
	state uint64
	// spare holds a cached second Gaussian sample from Box-Muller.
	spare    float64
	hasSpare bool
}

// NewRNG returns a generator seeded with seed. Two RNGs with the same seed
// produce identical streams.
func NewRNG(seed uint64) *RNG {
	return &RNG{state: seed}
}

// Uint64 returns the next 64 random bits (SplitMix64).
func (r *RNG) Uint64() uint64 {
	r.state += 0x9e3779b97f4a7c15
	z := r.state
	z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9
	z = (z ^ (z >> 27)) * 0x94d049bb133111eb
	return z ^ (z >> 31)
}

// Split returns a new RNG whose stream is independent of r's future output.
// Useful for giving each subsystem its own deterministic stream.
func (r *RNG) Split() *RNG {
	return NewRNG(r.Uint64())
}

// Float64 returns a uniform sample in [0,1).
func (r *RNG) Float64() float64 {
	return float64(r.Uint64()>>11) / float64(1<<53)
}

// Float32 returns a uniform sample in [0,1).
func (r *RNG) Float32() float32 {
	return float32(r.Uint64()>>40) / float32(1<<24)
}

// Intn returns a uniform sample in [0,n). Panics if n <= 0.
func (r *RNG) Intn(n int) int {
	if n <= 0 {
		panic("tensor: RNG.Intn with n <= 0")
	}
	return int(r.Uint64() % uint64(n))
}

// Range returns a uniform float64 in [lo,hi).
func (r *RNG) Range(lo, hi float64) float64 {
	return lo + (hi-lo)*r.Float64()
}

// Bool returns true with probability p.
func (r *RNG) Bool(p float64) bool {
	return r.Float64() < p
}

// Norm returns a standard-normal sample (Box-Muller with caching).
func (r *RNG) Norm() float64 {
	if r.hasSpare {
		r.hasSpare = false
		return r.spare
	}
	var u, v, s float64
	for {
		u = 2*r.Float64() - 1
		v = 2*r.Float64() - 1
		s = u*u + v*v
		if s > 0 && s < 1 {
			break
		}
	}
	m := math.Sqrt(-2 * math.Log(s) / s)
	r.spare = v * m
	r.hasSpare = true
	return u * m
}

// Perm returns a random permutation of [0,n) (Fisher-Yates).
func (r *RNG) Perm(n int) []int {
	p := make([]int, n)
	for i := range p {
		p[i] = i
	}
	for i := n - 1; i > 0; i-- {
		j := r.Intn(i + 1)
		p[i], p[j] = p[j], p[i]
	}
	return p
}

// Choice returns a uniformly random element index weighted by w
// (w need not be normalized; all weights must be >= 0 and not all zero).
func (r *RNG) Choice(w []float64) int {
	var total float64
	for _, v := range w {
		if v < 0 {
			panic("tensor: RNG.Choice negative weight")
		}
		total += v
	}
	if total == 0 {
		panic("tensor: RNG.Choice all-zero weights")
	}
	x := r.Float64() * total
	for i, v := range w {
		x -= v
		if x < 0 {
			return i
		}
	}
	return len(w) - 1
}

// Randn fills a new tensor of the given shape with N(0, std²) samples.
func Randn(r *RNG, std float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = std * float32(r.Norm())
	}
	return t
}

// Uniform fills a new tensor with samples uniform in [lo,hi).
func Uniform(r *RNG, lo, hi float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = lo + (hi-lo)*r.Float32()
	}
	return t
}

// XavierUniform returns a (fanOut,fanIn)-shaped weight matrix initialized
// with the Glorot/Xavier uniform scheme, the default for linear layers.
func XavierUniform(r *RNG, fanOut, fanIn int) *Tensor {
	limit := float32(math.Sqrt(6.0 / float64(fanIn+fanOut)))
	return Uniform(r, -limit, limit, fanOut, fanIn)
}

// KaimingNormal returns a (fanOut,fanIn)-shaped weight matrix with
// He-normal initialization, appropriate before ReLU-family activations.
func KaimingNormal(r *RNG, fanOut, fanIn int) *Tensor {
	std := float32(math.Sqrt(2.0 / float64(fanIn)))
	return Randn(r, std, fanOut, fanIn)
}
