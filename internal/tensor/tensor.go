// Package tensor provides a small, dependency-free float32 tensor library
// used by every numeric subsystem in iTask: the neural-network layers, the
// quantization kernels, and the synthetic scene renderer.
//
// Tensors are dense, row-major, and always contiguous. The package favours
// explicit shapes and loud failures: shape mismatches panic, because in this
// codebase a shape mismatch is always a programming error, never a runtime
// condition to recover from.
package tensor

import (
	"fmt"
	"strings"
)

// Tensor is a dense row-major float32 array with an explicit shape.
// The zero value is not useful; construct tensors with New, Zeros, Full,
// FromSlice, or the random constructors in random.go.
type Tensor struct {
	// Data holds the elements in row-major order. len(Data) == Size().
	Data []float32
	// Shape holds the extent of each dimension. A scalar has Shape == [].
	Shape []int
}

// New allocates a zero-filled tensor with the given shape.
// New() with no arguments allocates a scalar.
func New(shape ...int) *Tensor {
	n := checkShape(shape)
	return &Tensor{Data: make([]float32, n), Shape: append([]int(nil), shape...)}
}

// Zeros is an alias for New, for readability at call sites that care that
// the content is zero rather than that the tensor is fresh.
func Zeros(shape ...int) *Tensor { return New(shape...) }

// Full allocates a tensor with every element set to v.
func Full(v float32, shape ...int) *Tensor {
	t := New(shape...)
	for i := range t.Data {
		t.Data[i] = v
	}
	return t
}

// Ones allocates a tensor of ones.
func Ones(shape ...int) *Tensor { return Full(1, shape...) }

// FromSlice wraps data in a tensor of the given shape. The slice is used
// directly (not copied); the caller must not alias it afterwards unless that
// sharing is intended. Panics if len(data) does not match the shape.
func FromSlice(data []float32, shape ...int) *Tensor {
	n := checkShape(shape)
	if len(data) != n {
		panic(fmt.Sprintf("tensor: FromSlice: %d elements for shape %v (need %d)", len(data), shape, n))
	}
	return &Tensor{Data: data, Shape: append([]int(nil), shape...)}
}

// Scalar allocates a 0-dimensional tensor holding v.
func Scalar(v float32) *Tensor { return FromSlice([]float32{v}) }

// checkShape validates a shape and returns the element count.
func checkShape(shape []int) int {
	n := 1
	for _, d := range shape {
		if d < 0 {
			panic(fmt.Sprintf("tensor: negative dimension in shape %v", shape))
		}
		n *= d
	}
	return n
}

// Size returns the total number of elements.
func (t *Tensor) Size() int {
	n := 1
	for _, d := range t.Shape {
		n *= d
	}
	return n
}

// Dims returns the number of dimensions (rank).
func (t *Tensor) Dims() int { return len(t.Shape) }

// Dim returns the extent of dimension i. Negative i counts from the end,
// so Dim(-1) is the innermost dimension.
func (t *Tensor) Dim(i int) int {
	if i < 0 {
		i += len(t.Shape)
	}
	return t.Shape[i]
}

// SameShape reports whether t and u have identical shapes.
func (t *Tensor) SameShape(u *Tensor) bool {
	if len(t.Shape) != len(u.Shape) {
		return false
	}
	for i, d := range t.Shape {
		if u.Shape[i] != d {
			return false
		}
	}
	return true
}

// mustSameShape panics with op context when shapes differ.
func mustSameShape(op string, t, u *Tensor) {
	if !t.SameShape(u) {
		panic(fmt.Sprintf("tensor: %s: shape mismatch %v vs %v", op, t.Shape, u.Shape))
	}
}

// offset computes the flat index for the given multi-dimensional index.
func (t *Tensor) offset(idx []int) int {
	if len(idx) != len(t.Shape) {
		panic(fmt.Sprintf("tensor: index rank %d for shape %v", len(idx), t.Shape))
	}
	off := 0
	for i, x := range idx {
		if x < 0 || x >= t.Shape[i] {
			panic(fmt.Sprintf("tensor: index %v out of range for shape %v", idx, t.Shape))
		}
		off = off*t.Shape[i] + x
	}
	return off
}

// At returns the element at the given multi-dimensional index.
func (t *Tensor) At(idx ...int) float32 { return t.Data[t.offset(idx)] }

// Set stores v at the given multi-dimensional index.
func (t *Tensor) Set(v float32, idx ...int) { t.Data[t.offset(idx)] = v }

// Clone returns a deep copy of t.
func (t *Tensor) Clone() *Tensor {
	u := &Tensor{Data: make([]float32, len(t.Data)), Shape: append([]int(nil), t.Shape...)}
	copy(u.Data, t.Data)
	return u
}

// CopyFrom copies u's data into t. Shapes must match.
func (t *Tensor) CopyFrom(u *Tensor) {
	mustSameShape("CopyFrom", t, u)
	copy(t.Data, u.Data)
}

// Reshape returns a view of t with a new shape of the same total size.
// The returned tensor shares t's backing data.
func (t *Tensor) Reshape(shape ...int) *Tensor {
	n := checkShape(shape)
	if n != t.Size() {
		panic(fmt.Sprintf("tensor: Reshape %v -> %v changes size", t.Shape, shape))
	}
	return &Tensor{Data: t.Data, Shape: append([]int(nil), shape...)}
}

// Flatten returns a 1-D view sharing t's data.
func (t *Tensor) Flatten() *Tensor { return t.Reshape(t.Size()) }

// Row returns a view of row i of a 2-D tensor, sharing data.
func (t *Tensor) Row(i int) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Row on %d-D tensor", len(t.Shape)))
	}
	c := t.Shape[1]
	return &Tensor{Data: t.Data[i*c : (i+1)*c], Shape: []int{c}}
}

// Slice2D returns a view of rows [lo,hi) of a 2-D tensor, sharing data.
func (t *Tensor) Slice2D(lo, hi int) *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Slice2D on %d-D tensor", len(t.Shape)))
	}
	if lo < 0 || hi > t.Shape[0] || lo > hi {
		panic(fmt.Sprintf("tensor: Slice2D [%d,%d) out of range for %v", lo, hi, t.Shape))
	}
	c := t.Shape[1]
	return &Tensor{Data: t.Data[lo*c : hi*c], Shape: []int{hi - lo, c}}
}

// Fill sets every element to v.
func (t *Tensor) Fill(v float32) {
	for i := range t.Data {
		t.Data[i] = v
	}
}

// Zero sets every element to 0.
func (t *Tensor) Zero() {
	for i := range t.Data {
		t.Data[i] = 0
	}
}

// Equal reports whether t and u have the same shape and identical elements.
func (t *Tensor) Equal(u *Tensor) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		if u.Data[i] != v {
			return false
		}
	}
	return true
}

// AllClose reports whether t and u have the same shape and elementwise
// |t-u| <= atol + rtol*|u|.
func (t *Tensor) AllClose(u *Tensor, rtol, atol float32) bool {
	if !t.SameShape(u) {
		return false
	}
	for i, v := range t.Data {
		d := v - u.Data[i]
		if d < 0 {
			d = -d
		}
		r := u.Data[i]
		if r < 0 {
			r = -r
		}
		if d > atol+rtol*r {
			return false
		}
	}
	return true
}

// String renders small tensors fully and large ones as a summary.
func (t *Tensor) String() string {
	if t.Size() <= 64 {
		var b strings.Builder
		fmt.Fprintf(&b, "Tensor%v ", t.Shape)
		fmt.Fprintf(&b, "%v", t.Data)
		return b.String()
	}
	return fmt.Sprintf("Tensor%v (%d elements)", t.Shape, t.Size())
}

// Transpose returns a new 2-D tensor that is the transpose of t.
func (t *Tensor) Transpose() *Tensor {
	if len(t.Shape) != 2 {
		panic(fmt.Sprintf("tensor: Transpose on %d-D tensor", len(t.Shape)))
	}
	r, c := t.Shape[0], t.Shape[1]
	u := New(c, r)
	// Blocked transpose for cache friendliness on larger matrices.
	const blk = 32
	for i0 := 0; i0 < r; i0 += blk {
		i1 := min(i0+blk, r)
		for j0 := 0; j0 < c; j0 += blk {
			j1 := min(j0+blk, c)
			for i := i0; i < i1; i++ {
				row := t.Data[i*c:]
				for j := j0; j < j1; j++ {
					u.Data[j*r+i] = row[j]
				}
			}
		}
	}
	return u
}
