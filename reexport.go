package itask

import (
	"itask/internal/geom"
	"itask/internal/registry"
	"itask/internal/scene"
	"itask/internal/tensor"
)

// This file re-exports the types the Pipeline API surfaces, so downstream
// users of the module never need to import internal packages: boxes, image
// tensors, domains, registry identifiers, and a synthetic-scene helper for
// demos and tests.

// Box is an axis-aligned box with normalized center coordinates; see the
// methods on geom.Box (Left/Right/Top/Bottom, Area, IoU via itask.IoU).
type Box = geom.Box

// IoU returns the intersection-over-union of two boxes in [0,1].
func IoU(a, b Box) float64 { return geom.IoU(a, b) }

// Image is a dense channel-major (3,H,W) float32 image tensor, the input
// type of Pipeline.Detect.
type Image = tensor.Tensor

// NewImage allocates a zeroed (channels, size, size) image.
func NewImage(channels, size int) *Image { return tensor.New(channels, size, size) }

// Domain identifies an application domain for synthetic scene generation.
type Domain = scene.DomainID

// The four evaluation domains.
const (
	Driving    = scene.Driving
	Medical    = scene.Medical
	Industrial = scene.Industrial
	Orchard    = scene.Orchard
)

// GroundTruth is one labeled object of a generated scene.
type GroundTruth struct {
	Box   Box
	Class string
}

// GenerateScene renders one synthetic scene from a domain with the default
// generation settings, returning the image and its labeled objects.
// Deterministic in seed.
func GenerateScene(d Domain, seed uint64) (*Image, []GroundTruth) {
	sc := scene.Generate(scene.GetDomain(d), scene.DefaultGenConfig(), tensor.NewRNG(seed))
	gts := make([]GroundTruth, len(sc.Objects))
	for i, o := range sc.Objects {
		gts[i] = GroundTruth{Box: o.Box, Class: o.Class.Name()}
	}
	return sc.Image, gts
}

// ArtifactID identifies one immutable published model version
// (name, version, content checksum); its String form "name@vN#sum" appears
// in ModelInfo.Artifact and per-version serving metrics, and
// Pipeline.RollbackModel returns the ID now routed.
type ArtifactID = registry.ArtifactID

// ParseArtifactID inverts ArtifactID.String, so callers can split the
// versioned artifact strings surfaced by ModelInfo and /metricsz.
func ParseArtifactID(s string) (ArtifactID, error) { return registry.ParseID(s) }

// RegistryStats counts the model registry's lifecycle events (publishes,
// explicit rollbacks, health demotions) as surfaced by /metricsz.
type RegistryStats = registry.Stats

// ModelVersion describes one version in an artifact's series; see
// Pipeline.Registry().Versions.
type ModelVersion = registry.VersionInfo

// Registry lifecycle errors, re-exported for errors.Is on Pipeline calls.
var (
	// ErrUnknownArtifact: the named artifact or version is not published.
	ErrUnknownArtifact = registry.ErrUnknownArtifact
	// ErrModelConflict: a publish contradicts the existing series (second
	// generalist, task takeover, or a name changing kind).
	ErrModelConflict = registry.ErrConflict
	// ErrNoRollback: rollback requested but no healthy prior version exists.
	ErrNoRollback = registry.ErrNoRollback
)

// ClassNames returns the global detection vocabulary in class-ID order —
// Detection.ClassID indexes into it.
func ClassNames() []string {
	out := make([]string, scene.NumClasses)
	for c := scene.ClassID(0); c < scene.NumClasses; c++ {
		out[c] = c.Name()
	}
	return out
}
