// Kernel benchmarks: the four hot-path measurements recorded in
// BENCH_kernels.json (see DESIGN.md §8). These exercise exactly the code the
// serving layer funnels batched work into — the float GEMM family, the int8
// GEMM, multi-head attention, and the end-to-end single-image quantized
// detect that itask.Pipeline.Detect runs for generalist traffic.
//
// Regenerate the JSON with:
//
//	go test -run=NONE -bench='BenchmarkMatMul$|BenchmarkQuantGEMM$|BenchmarkAttention$|BenchmarkPipelineDetect$' -benchtime=2s .
package itask_test

import (
	"testing"

	"itask/internal/nn"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// benchTeacherCfg mirrors DefaultOptions().TeacherCfg: the architecture the
// deployed quantized generalist runs at serve time.
func benchTeacherCfg() vit.Config {
	return vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2, Classes: int(scene.NumClasses),
	}
}

// BenchmarkMatMul measures the dense float GEMM at 128³ — the tile-dispatched
// kernel behind every Linear layer.
func BenchmarkMatMul(b *testing.B) {
	rng := tensor.NewRNG(1)
	x := tensor.Randn(rng, 1, 128, 128)
	y := tensor.Randn(rng, 1, 128, 128)
	out := tensor.New(128, 128)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tensor.MatMulInto(out, x, y)
	}
	b.SetBytes(2 * 128 * 128 * 128 * 4) // flops*4 so ns/op converts to GFLOP/s-ish
}

// BenchmarkQuantGEMM measures the int8 integer GEMM at a serving-shaped size
// (a micro-batch of 8 images × 16 tokens against a 256→256 projection).
func BenchmarkQuantGEMM(b *testing.B) {
	rng := tensor.NewRNG(2)
	x := tensor.Randn(rng, 0.5, 128, 256)
	w := tensor.Randn(rng, 0.1, 256, 256)
	qw := quant.QuantizeWeight(w, 8, true)
	qa := quant.QuantizeActivation(x, 8)
	out := tensor.New(128, 256)
	bias := make([]float32, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		quant.GEMM(qa, qw, bias, out)
	}
}

// BenchmarkAttention measures one float multi-head attention forward over a
// packed micro-batch of 8 sequences (128 rows, dim 48, 4 heads).
func BenchmarkAttention(b *testing.B) {
	cfg := benchTeacherCfg()
	rng := tensor.NewRNG(3)
	mha := nn.NewMultiHeadAttention("bench", cfg.Dim, cfg.Heads, cfg.Tokens(), rng)
	x := tensor.Randn(rng, 0.5, 8*cfg.Tokens(), cfg.Dim)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		out := mha.Forward(x, false)
		benchSink += out.Size()
	}
}

// BenchmarkPipelineDetect measures the end-to-end single-image quantized
// detect — patchify, int8 trunk forward, detection head, decode — exactly
// what Pipeline.Detect executes when the scheduler routes a request to the
// deployed generalist.
func BenchmarkPipelineDetect(b *testing.B) {
	cfg := benchTeacherCfg()
	m := vit.New(cfg, tensor.NewRNG(4))
	qm, err := quant.FromViT(m, quant.DefaultConfig())
	if err != nil {
		b.Fatal(err)
	}
	img := tensor.Randn(tensor.NewRNG(5), 0.5, 3, cfg.ImageSize, cfg.ImageSize)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dets := qm.Detect(img, 0.3, 0.5)
		benchSink += len(dets)
	}
}
