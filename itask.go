package itask

import (
	"fmt"
	"sort"
	"sync"

	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/hwsim"
	"itask/internal/kg"
	"itask/internal/llm"
	"itask/internal/quant"
	"itask/internal/scene"
	"itask/internal/sched"
	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// Detection is one detected object, with the class resolved to its name.
type Detection struct {
	Box       geom.Box
	Class     string
	ClassID   int
	Score     float64
	Relevance float64 // knowledge-graph prior of the class for the task
}

// Options configures a Pipeline.
type Options struct {
	// Seed drives every random choice in the pipeline.
	Seed uint64
	// TeacherCfg and StudentCfg are the two model architectures. The class
	// count of both must be scene.NumClasses.
	TeacherCfg, StudentCfg vit.Config
	// Quant selects the generalist's quantization scheme.
	Quant quant.Config
	// Gen controls synthetic scene generation for training.
	Gen scene.GenConfig
	// TrainSamplesPerTask and TrainCfg control generalist training.
	TrainSamplesPerTask int
	TrainCfg            distill.TrainConfig
	// DistillSamples and DistillCfg control per-task student distillation.
	DistillSamples int
	DistillCfg     distill.DistillConfig
	// PriorThreshold is the KG relevance below which detections are
	// filtered out for a task.
	PriorThreshold float64
	// Thresholds is the decode/eval operating point.
	Thresholds eval.Thresholds
	// Accel is the hardware design point used for latency/energy reports.
	Accel hwsim.AccelConfig
	// MemoryBudgetBytes is the edge RAM budget for the model cache.
	MemoryBudgetBytes int64
}

// DefaultOptions returns a laptop-scale configuration that trains in
// seconds per task and reproduces the experiment shapes.
func DefaultOptions() Options {
	classes := int(scene.NumClasses)
	teacher := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2, Classes: classes,
	}
	student := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: classes,
	}
	tc := distill.DefaultTrainConfig()
	tc.Epochs = 12
	dc := distill.DefaultDistillConfig()
	dc.Train.Epochs = 12
	return Options{
		Seed:                1,
		TeacherCfg:          teacher,
		StudentCfg:          student,
		Quant:               quant.DefaultConfig(),
		Gen:                 scene.DefaultGenConfig(),
		TrainSamplesPerTask: 48,
		TrainCfg:            tc,
		DistillSamples:      64,
		DistillCfg:          dc,
		PriorThreshold:      0.45,
		Thresholds:          eval.DefaultThresholds(),
		Accel:               hwsim.DefaultAccel(),
		MemoryBudgetBytes:   2 << 20,
	}
}

// taskState is everything the pipeline knows about one defined task.
type taskState struct {
	name        string
	description string
	graph       *kg.Graph
	priors      []float64
	student     *vit.Model
}

// Pipeline is the end-to-end iTask system: simulated LLM, knowledge graphs,
// the trained generalist (float teacher + quantized deployment), per-task
// distilled students, and the situational scheduler.
//
// Concurrency: once the models are set up (TrainGeneralist/LoadGeneralist
// plus any students), Detect, DetectBatch, DefineTask, Tasks, Priors,
// Graph, and the serve.Backend adapter are safe to call concurrently — the
// serving layer depends on this. The training/loading methods themselves
// are setup-time operations and must not race each other.
type Pipeline struct {
	opts Options
	llm  *llm.SimLLM
	rng  *tensor.RNG

	teacher   *vit.Model
	quantized *quant.Model
	// genStudent is the student-architecture multi-task base used by
	// AdaptStudent, distilled lazily from the teacher.
	genStudent *vit.Model
	// taskMu guards the tasks map: DefineTask writes while concurrent
	// detection reads.
	taskMu    sync.RWMutex
	tasks     map[string]*taskState
	scheduler *sched.Scheduler
}

// New creates a pipeline. Call TrainGeneralist before Detect.
func New(opts Options) *Pipeline {
	if opts.TeacherCfg.Classes != int(scene.NumClasses) || opts.StudentCfg.Classes != int(scene.NumClasses) {
		panic(fmt.Sprintf("itask: model class count must be %d", scene.NumClasses))
	}
	return &Pipeline{
		opts:      opts,
		llm:       llm.New(llm.DefaultOptions()),
		rng:       tensor.NewRNG(opts.Seed),
		tasks:     map[string]*taskState{},
		scheduler: sched.New(opts.MemoryBudgetBytes),
	}
}

// task looks up a defined task under the read lock.
func (p *Pipeline) task(name string) (*taskState, bool) {
	p.taskMu.RLock()
	defer p.taskMu.RUnlock()
	ts, ok := p.tasks[name]
	return ts, ok
}

// registerGeneralist registers the quantized generalist with the scheduler,
// wiring both the single-image and the micro-batched entry points.
func (p *Pipeline) registerGeneralist(qm *quant.Model) error {
	th := p.opts.Thresholds
	lat := hwsim.SimulateAccel(p.opts.Accel, p.opts.TeacherCfg).LatencyUS
	return p.scheduler.Register(sched.Model{
		Name:      "generalist-q" + fmt.Sprint(p.opts.Quant.Bits),
		Kind:      sched.Generalist,
		Bytes:     int64(qm.WeightBytes()),
		LatencyUS: lat,
		Detect: func(img *tensor.Tensor) []geom.Scored {
			return qm.Detect(img, th.Obj, th.NMSIoU)
		},
		DetectBatch: func(imgs []*tensor.Tensor) [][]geom.Scored {
			return qm.DetectBatch(imgs, th.Obj, th.NMSIoU)
		},
	})
}

// registerStudent registers a task-specific student with the scheduler,
// wiring both the single-image and the micro-batched entry points.
func (p *Pipeline) registerStudent(taskName string, student *vit.Model) error {
	th := p.opts.Thresholds
	lat := hwsim.SimulateAccel(p.opts.Accel, p.opts.StudentCfg).LatencyUS
	return p.scheduler.Register(sched.Model{
		Name:        taskName + "-student",
		Kind:        sched.TaskSpecific,
		Task:        taskName,
		Bytes:       int64(student.NumParams() * 4),
		LatencyUS:   lat,
		Detect:      sched.DetectFunc(eval.DetectorOf(student, th)),
		DetectBatch: sched.BatchDetectFunc(eval.BatchDetectorOf(student, th)),
	})
}

// TrainGeneralist trains the multi-task teacher on a mixture of the given
// tasks (nil means the four standard tasks), quantizes it into the
// deployable generalist, and registers it with the scheduler.
func (p *Pipeline) TrainGeneralist(tasks []dataset.Task) error {
	if p.teacher != nil {
		return fmt.Errorf("itask: generalist already trained")
	}
	if tasks == nil {
		tasks = dataset.StandardTasks()
	}
	mixed := dataset.BuildMixed(tasks, p.opts.TrainSamplesPerTask, p.opts.Gen, p.rng.Split())
	teacher := vit.New(p.opts.TeacherCfg, p.rng.Split())
	cfg := p.opts.TrainCfg
	cfg.Seed = p.rng.Uint64()
	if _, err := distill.Train(teacher, mixed, cfg); err != nil {
		return fmt.Errorf("itask: training generalist: %w", err)
	}
	qm, err := quant.FromViT(teacher, p.opts.Quant)
	if err != nil {
		return fmt.Errorf("itask: quantizing generalist: %w", err)
	}
	p.teacher = teacher
	p.quantized = qm
	return p.registerGeneralist(qm)
}

// LoadGeneralist initializes the generalist from a teacher checkpoint
// (written by itask-train or vit.SaveParams) instead of training: the
// checkpoint is loaded into the teacher architecture, quantized, and
// registered with the scheduler.
func (p *Pipeline) LoadGeneralist(checkpointPath string) error {
	if p.teacher != nil {
		return fmt.Errorf("itask: generalist already initialized")
	}
	teacher := vit.New(p.opts.TeacherCfg, p.rng.Split())
	if err := teacher.LoadFile(checkpointPath); err != nil {
		return fmt.Errorf("itask: loading generalist checkpoint: %w", err)
	}
	qm, err := quant.FromViT(teacher, p.opts.Quant)
	if err != nil {
		return fmt.Errorf("itask: quantizing generalist: %w", err)
	}
	p.teacher = teacher
	p.quantized = qm
	return p.registerGeneralist(qm)
}

// LoadStudent registers a task-specific student from a checkpoint written
// by itask-train. The task must already be defined.
func (p *Pipeline) LoadStudent(taskName, checkpointPath string) error {
	ts, ok := p.task(taskName)
	if !ok {
		return fmt.Errorf("itask: task %q not defined", taskName)
	}
	if ts.student != nil {
		return fmt.Errorf("itask: task %q already has a student", taskName)
	}
	student := vit.New(p.opts.StudentCfg, p.rng.Split())
	if err := student.LoadFile(checkpointPath); err != nil {
		return fmt.Errorf("itask: loading student checkpoint: %w", err)
	}
	if err := distill.ApplyClassPriors(student, ts.priors, 0.5); err != nil {
		return err
	}
	ts.student = student
	return p.registerStudent(taskName, student)
}

// DefineTask runs the simulated LLM over a mission description, stores the
// resulting knowledge graph and class priors, and makes the task servable
// (by the generalist until a student is distilled).
func (p *Pipeline) DefineTask(name, description string) error {
	if name == "" {
		return fmt.Errorf("itask: empty task name")
	}
	if _, dup := p.task(name); dup {
		return fmt.Errorf("itask: task %q already defined", name)
	}
	g, err := p.llm.Generate(name, description)
	if err != nil {
		return fmt.Errorf("itask: generating knowledge graph: %w", err)
	}
	p.taskMu.Lock()
	defer p.taskMu.Unlock()
	if _, dup := p.tasks[name]; dup {
		return fmt.Errorf("itask: task %q already defined", name)
	}
	p.tasks[name] = &taskState{
		name:        name,
		description: description,
		graph:       g,
		priors:      kg.ClassPriors(g, "task:"+name),
	}
	return nil
}

// DistillStudent builds the task-specific configuration for a defined task:
// a student distilled from the teacher on task-domain data, conditioned with
// the task's KG priors, and registered with the scheduler.
func (p *Pipeline) DistillStudent(taskName string, domain scene.DomainID) error {
	ts, ok := p.task(taskName)
	if !ok {
		return fmt.Errorf("itask: task %q not defined", taskName)
	}
	if p.teacher == nil {
		return fmt.Errorf("itask: train the generalist first")
	}
	if ts.student != nil {
		return fmt.Errorf("itask: task %q already has a student", taskName)
	}
	task := dataset.Task{Name: taskName, Domain: domain, Description: ts.description}
	set := dataset.Build(task, p.opts.DistillSamples, p.opts.Gen, p.rng.Split())
	student := vit.New(p.opts.StudentCfg, p.rng.Split())
	dcfg := p.opts.DistillCfg
	dcfg.Train.Seed = p.rng.Uint64()
	if _, err := distill.Distill(p.teacher, student, set, dcfg); err != nil {
		return fmt.Errorf("itask: distilling student for %q: %w", taskName, err)
	}
	// Task specialization: a supervised fine-tune on the task data after
	// distillation ("optimized for high accuracy in defined tasks").
	ftcfg := distill.DefaultTrainConfig()
	ftcfg.Epochs = dcfg.Train.Epochs
	ftcfg.LR = 1e-3
	ftcfg.Seed = p.rng.Uint64()
	if _, err := distill.Train(student, set, ftcfg); err != nil {
		return fmt.Errorf("itask: fine-tuning student for %q: %w", taskName, err)
	}
	if err := distill.ApplyClassPriors(student, ts.priors, 0.5); err != nil {
		return err
	}
	ts.student = student
	return p.registerStudent(taskName, student)
}

// AdaptStudent builds a task-specific configuration from only `shots`
// support scenes per class — the few-shot path (claim C5): a
// student-architecture multi-task base (distilled once from the teacher) is
// cloned, conditioned with the task's knowledge-graph priors, and
// fine-tuned on the tiny support set. Use DistillStudent instead when
// abundant task data is available.
func (p *Pipeline) AdaptStudent(taskName string, domain scene.DomainID, shots int) error {
	ts, ok := p.task(taskName)
	if !ok {
		return fmt.Errorf("itask: task %q not defined", taskName)
	}
	if p.teacher == nil {
		return fmt.Errorf("itask: train the generalist first")
	}
	if ts.student != nil {
		return fmt.Errorf("itask: task %q already has a student", taskName)
	}
	if shots <= 0 {
		return fmt.Errorf("itask: shots must be positive")
	}
	if p.genStudent == nil {
		base := vit.New(p.opts.StudentCfg, p.rng.Split())
		mixed := dataset.BuildMixed(dataset.StandardTasks(), p.opts.TrainSamplesPerTask, p.opts.Gen, p.rng.Split())
		dcfg := p.opts.DistillCfg
		dcfg.Train.Seed = p.rng.Uint64()
		if _, err := distill.Distill(p.teacher, base, mixed, dcfg); err != nil {
			return fmt.Errorf("itask: building few-shot base: %w", err)
		}
		p.genStudent = base
	}
	student := vit.New(p.opts.StudentCfg, p.rng.Split())
	if err := p.genStudent.CloneWeightsTo(student); err != nil {
		return err
	}
	task := dataset.Task{Name: taskName, Domain: domain, Description: ts.description}
	task.Classes = scene.GetDomain(domain).Classes
	support := dataset.BuildFewShot(task, shots, p.opts.Gen, p.rng.Split())
	fcfg := distill.DefaultFewShotConfig()
	fcfg.Train.Seed = p.rng.Uint64()
	if _, err := distill.FewShotAdapt(student, ts.priors, support, fcfg); err != nil {
		return fmt.Errorf("itask: few-shot adapting %q: %w", taskName, err)
	}
	ts.student = student
	return p.registerStudent(taskName, student)
}

// ModelInfo describes which configuration served a detection call.
type ModelInfo struct {
	Name string
	Kind string
	// LatencyUS and EnergyUJ are the simulated accelerator cost of the
	// inference that produced the detections.
	LatencyUS float64
	EnergyUJ  float64
}

// filterByPriors applies a task's knowledge-graph priors to raw
// detections: classes below PriorThreshold are dropped, survivors are
// annotated with their relevance and sorted by score.
func (p *Pipeline) filterByPriors(ts *taskState, raw []geom.Scored) []Detection {
	var out []Detection
	for _, d := range raw {
		rel := ts.priors[d.Class]
		if rel < p.opts.PriorThreshold {
			continue
		}
		out = append(out, Detection{
			Box:       d.Box,
			Class:     scene.ClassID(d.Class).Name(),
			ClassID:   d.Class,
			Score:     d.Score,
			Relevance: rel,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// modelInfo builds the simulated accelerator cost report for an inference
// served by `model` at the given micro-batch size (per-image figures).
func (p *Pipeline) modelInfo(model *sched.Model, batch int) ModelInfo {
	cfg := p.opts.TeacherCfg
	if model.Kind == sched.TaskSpecific {
		cfg = p.opts.StudentCfg
	}
	rep := hwsim.SimulateAccelBatch(p.opts.Accel, cfg, batch)
	return ModelInfo{
		Name:      model.Name,
		Kind:      model.Kind.String(),
		LatencyUS: rep.LatencyUS,
		EnergyUJ:  rep.TotalUJ,
	}
}

// ValidateImage checks that img is a well-formed model input — a (3,S,S)
// tensor for the pipeline's configured image size — without running it.
// Malformed input fails with an error wrapping serve.ErrBadShape, so the
// serving layer (which calls this at admission via the ImageValidator
// interface) rejects it before it can reach a panicking kernel inside a
// shared micro-batch.
func (p *Pipeline) ValidateImage(img *tensor.Tensor) error {
	size := p.opts.TeacherCfg.ImageSize
	ch := p.opts.TeacherCfg.Channels
	switch {
	case img == nil:
		return fmt.Errorf("itask: nil image: %w", serve.ErrBadShape)
	case len(img.Shape) != 3 || img.Shape[0] != ch || img.Shape[1] != size || img.Shape[2] != size:
		return fmt.Errorf("itask: image shape %v, want [%d %d %d]: %w",
			img.Shape, ch, size, size, serve.ErrBadShape)
	case len(img.Data) != ch*size*size:
		return fmt.Errorf("itask: image data has %d values for shape %v: %w",
			len(img.Data), img.Shape, serve.ErrBadShape)
	}
	return nil
}

// validateImages applies ValidateImage to a whole batch.
func (p *Pipeline) validateImages(imgs []*tensor.Tensor) error {
	for i, img := range imgs {
		if err := p.ValidateImage(img); err != nil {
			return fmt.Errorf("image %d: %w", i, err)
		}
	}
	return nil
}

// Detect runs task-conditioned detection on one (3,H,W) image: the
// scheduler picks the configuration, the model detects, and the task's KG
// priors filter irrelevant classes.
func (p *Pipeline) Detect(taskName string, img *tensor.Tensor) ([]Detection, ModelInfo, error) {
	ts, ok := p.task(taskName)
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("itask: task %q not defined", taskName)
	}
	if p.teacher == nil {
		return nil, ModelInfo{}, fmt.Errorf("itask: train the generalist first")
	}
	if err := p.ValidateImage(img); err != nil {
		return nil, ModelInfo{}, err
	}
	raw, model, err := p.scheduler.Detect(sched.Request{Task: taskName}, img)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return p.filterByPriors(ts, raw), p.modelInfo(model, 1), nil
}

// DetectBatch runs task-conditioned detection on a micro-batch of images
// with a single scheduler selection and a single (batched) model forward —
// the entry point the serving layer's dynamic batcher calls. The returned
// ModelInfo carries per-image latency/energy at this batch size, so the
// weight-stationary amortization of batching shows up directly in the
// numbers.
func (p *Pipeline) DetectBatch(taskName string, imgs []*tensor.Tensor) ([][]Detection, ModelInfo, error) {
	if len(imgs) == 0 {
		return nil, ModelInfo{}, fmt.Errorf("itask: empty batch")
	}
	ts, ok := p.task(taskName)
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("itask: task %q not defined", taskName)
	}
	if p.teacher == nil {
		return nil, ModelInfo{}, fmt.Errorf("itask: train the generalist first")
	}
	if err := p.validateImages(imgs); err != nil {
		return nil, ModelInfo{}, err
	}
	raw, model, err := p.scheduler.DetectBatch(sched.Request{Task: taskName}, imgs)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return p.decodeBatch(ts, raw, model, len(imgs))
}

// DetectBatchOn is DetectBatch pinned to a specific registered variant
// instead of the scheduler's preference — the execution path behind the
// serving layer's fault-tolerant lanes, where a batch must run on exactly
// the variant it was coalesced (or degraded) for.
func (p *Pipeline) DetectBatchOn(variant, taskName string, imgs []*tensor.Tensor) ([][]Detection, ModelInfo, error) {
	if len(imgs) == 0 {
		return nil, ModelInfo{}, fmt.Errorf("itask: empty batch")
	}
	ts, ok := p.task(taskName)
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("itask: task %q not defined", taskName)
	}
	if p.teacher == nil {
		return nil, ModelInfo{}, fmt.Errorf("itask: train the generalist first")
	}
	if err := p.validateImages(imgs); err != nil {
		return nil, ModelInfo{}, err
	}
	raw, model, err := p.scheduler.DetectBatchOn(variant, imgs)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return p.decodeBatch(ts, raw, model, len(imgs))
}

// decodeBatch applies the task's KG priors to every image's raw detections
// and attaches the per-image accelerator cost report.
func (p *Pipeline) decodeBatch(ts *taskState, raw [][]geom.Scored, model *sched.Model, batch int) ([][]Detection, ModelInfo, error) {
	out := make([][]Detection, len(raw))
	for i, dets := range raw {
		out[i] = p.filterByPriors(ts, dets)
	}
	return out, p.modelInfo(model, batch), nil
}

// Tasks returns the names of all defined tasks, sorted.
func (p *Pipeline) Tasks() []string {
	p.taskMu.RLock()
	defer p.taskMu.RUnlock()
	names := make([]string, 0, len(p.tasks))
	for name := range p.tasks {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Priors returns the knowledge-graph class priors of a defined task,
// indexed by scene.ClassID.
func (p *Pipeline) Priors(taskName string) ([]float64, error) {
	ts, ok := p.task(taskName)
	if !ok {
		return nil, fmt.Errorf("itask: task %q not defined", taskName)
	}
	return append([]float64(nil), ts.priors...), nil
}

// Graph returns the knowledge graph of a defined task.
func (p *Pipeline) Graph(taskName string) (*kg.Graph, error) {
	ts, ok := p.task(taskName)
	if !ok {
		return nil, fmt.Errorf("itask: task %q not defined", taskName)
	}
	return ts.graph, nil
}

// Teacher exposes the trained float generalist (nil before training); used
// by the experiment harness.
func (p *Pipeline) Teacher() *vit.Model { return p.teacher }

// Quantized exposes the deployed quantized generalist (nil before training).
func (p *Pipeline) Quantized() *quant.Model { return p.quantized }

// Student returns the distilled model for a task, or nil.
func (p *Pipeline) Student(taskName string) *vit.Model {
	if ts, ok := p.task(taskName); ok {
		return ts.student
	}
	return nil
}

// SchedulerStats reports model-cache behaviour.
func (p *Pipeline) SchedulerStats() sched.CacheStats { return p.scheduler.Stats() }

// serveBackend adapts the pipeline to the serving layer's Backend
// interface (plus the optional FallbackRouter, VariantEvicter,
// ImageValidator, and CacheStatser extensions). Payloads are []Detection
// per image.
type serveBackend struct{ p *Pipeline }

func (b serveBackend) Route(task string) (string, error) {
	if _, ok := b.p.task(task); !ok {
		return "", fmt.Errorf("itask: task %q not defined", task)
	}
	return b.p.scheduler.Route(sched.Request{Task: task})
}

// RouteFallback names the quantized generalist as the degraded path for
// any defined task, letting the server keep serving a task whose
// task-specific lane tripped its circuit breaker.
func (b serveBackend) RouteFallback(task string) (string, error) {
	if _, ok := b.p.task(task); !ok {
		return "", fmt.Errorf("itask: task %q not defined", task)
	}
	return b.p.scheduler.RouteFallback(sched.Request{Task: task})
}

func (b serveBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	dets, info, err := b.p.DetectBatchOn(variant, task, imgs)
	if err != nil {
		return nil, "", err
	}
	payloads := make([]any, len(dets))
	for i := range dets {
		payloads[i] = dets[i]
	}
	return payloads, info.Name, nil
}

// EvictVariant drops the variant's weights from the model cache after the
// server saw it panic or hang, forcing a fresh load on next selection.
func (b serveBackend) EvictVariant(variant string) { b.p.scheduler.Evict(variant) }

// ValidateImage rejects malformed input at admission (serve.ErrBadShape)
// before it can reach a kernel.
func (b serveBackend) ValidateImage(img *tensor.Tensor) error { return b.p.ValidateImage(img) }

func (b serveBackend) CacheStats() sched.CacheStats { return b.p.scheduler.Stats() }

// ServeBackend exposes the pipeline as a serve.Backend so a serve.Server
// (or cmd/itask-serve) can run concurrent micro-batched inference over it.
// The pipeline must be fully set up (generalist plus any students) before
// serving starts.
func (p *Pipeline) ServeBackend() serve.Backend { return serveBackend{p: p} }

// HardwareComparison simulates the deployed generalist on the accelerator,
// the GPU baseline, and the CPU baseline.
func (p *Pipeline) HardwareComparison() hwsim.Comparison {
	return hwsim.Compare(p.opts.Accel, hwsim.DefaultGPU(), hwsim.DefaultCPU(), p.opts.TeacherCfg)
}
