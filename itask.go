package itask

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"
	"unsafe"

	"itask/internal/dataset"
	"itask/internal/distill"
	"itask/internal/eval"
	"itask/internal/geom"
	"itask/internal/hwsim"
	"itask/internal/kg"
	"itask/internal/llm"
	"itask/internal/quant"
	"itask/internal/registry"
	"itask/internal/scene"
	"itask/internal/sched"
	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// Detection is one detected object, with the class resolved to its name.
type Detection struct {
	Box       geom.Box
	Class     string
	ClassID   int
	Score     float64
	Relevance float64 // knowledge-graph prior of the class for the task
}

// Options configures a Pipeline.
type Options struct {
	// Seed drives every random choice in the pipeline.
	Seed uint64
	// TeacherCfg and StudentCfg are the two model architectures. The class
	// count of both must be scene.NumClasses.
	TeacherCfg, StudentCfg vit.Config
	// Quant selects the generalist's quantization scheme.
	Quant quant.Config
	// Gen controls synthetic scene generation for training.
	Gen scene.GenConfig
	// TrainSamplesPerTask and TrainCfg control generalist training.
	TrainSamplesPerTask int
	TrainCfg            distill.TrainConfig
	// DistillSamples and DistillCfg control per-task student distillation.
	DistillSamples int
	DistillCfg     distill.DistillConfig
	// PriorThreshold is the KG relevance below which detections are
	// filtered out for a task.
	PriorThreshold float64
	// Thresholds is the decode/eval operating point.
	Thresholds eval.Thresholds
	// Accel is the hardware design point used for latency/energy reports.
	Accel hwsim.AccelConfig
	// MemoryBudgetBytes is the edge RAM budget for the model cache.
	MemoryBudgetBytes int64
}

// DefaultOptions returns a laptop-scale configuration that trains in
// seconds per task and reproduces the experiment shapes.
func DefaultOptions() Options {
	classes := int(scene.NumClasses)
	teacher := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 48, Depth: 3, Heads: 4, MLPRatio: 2, Classes: classes,
	}
	student := vit.Config{
		ImageSize: 32, Channels: 3, PatchSize: 8,
		Dim: 32, Depth: 2, Heads: 4, MLPRatio: 2, Classes: classes,
	}
	tc := distill.DefaultTrainConfig()
	tc.Epochs = 12
	dc := distill.DefaultDistillConfig()
	dc.Train.Epochs = 12
	return Options{
		Seed:                1,
		TeacherCfg:          teacher,
		StudentCfg:          student,
		Quant:               quant.DefaultConfig(),
		Gen:                 scene.DefaultGenConfig(),
		TrainSamplesPerTask: 48,
		TrainCfg:            tc,
		DistillSamples:      64,
		DistillCfg:          dc,
		PriorThreshold:      0.45,
		Thresholds:          eval.DefaultThresholds(),
		Accel:               hwsim.DefaultAccel(),
		MemoryBudgetBytes:   2 << 20,
	}
}

// Well-known artifact names published by the pipeline. Routable artifacts
// (the generalist and per-task students) additionally carry versioned IDs
// assigned by the registry.
const (
	// TeacherArtifact is the float multi-task teacher (provenance, never
	// routed).
	TeacherArtifact = "teacher"
	// FewShotBaseArtifact is the student-architecture multi-task base used
	// by AdaptStudent (never routed).
	FewShotBaseArtifact = "fewshot-base"
)

// GeneralistArtifact is the registry name of the deployed quantized
// generalist for a quantization width.
func GeneralistArtifact(bits int) string { return fmt.Sprintf("generalist-q%d", bits) }

// StudentArtifact is the registry name of a task's distilled student.
func StudentArtifact(task string) string { return task + "-student" }

// taskState is everything the pipeline knows about one defined task. It is
// immutable after creation: redefinition replaces the whole value in the
// copy-on-write task map. Model state is NOT stored here — students live in
// the registry.
type taskState struct {
	name        string
	description string
	graph       *kg.Graph
	priors      []float64
}

// taskMap is the copy-on-write table of defined tasks, swapped atomically.
type taskMap map[string]*taskState

// Pipeline is the end-to-end iTask system: simulated LLM, knowledge graphs,
// the trained generalist (float teacher + quantized deployment), per-task
// distilled students, and the situational scheduler.
//
// Pipeline is a thin facade: all model state lives in an internal
// versioned registry (see internal/registry) behind an atomically-swapped
// snapshot, and the task table is an atomically-swapped copy-on-write map.
//
// Concurrency: every method is safe for concurrent use at any time — not
// just after setup. Readers (Detect, DetectBatch, DetectBatchOn, Tasks,
// Priors, Graph, Teacher, Quantized, Student, and the serve.Backend adapter)
// are lock-free: they load the current registry snapshot and task map and
// never block on writers. Writers (DefineTask, TrainGeneralist, Load*,
// Distill*, Adapt*, Reload*) serialize on an internal mutex, build the new
// model off to the side, and publish it as a new immutable version; in-flight
// requests finish on the version they started with.
type Pipeline struct {
	opts Options
	llm  *llm.SimLLM

	// mu serializes writers (task definition, training, distillation,
	// adaptation, checkpoint loads) and guards rng.
	mu  sync.Mutex
	rng *tensor.RNG

	tasks atomic.Pointer[taskMap]

	reg       *registry.Registry
	scheduler *sched.Scheduler
}

// New creates a pipeline. Call TrainGeneralist before Detect.
func New(opts Options) *Pipeline {
	if opts.TeacherCfg.Classes != int(scene.NumClasses) || opts.StudentCfg.Classes != int(scene.NumClasses) {
		panic(fmt.Sprintf("itask: model class count must be %d", scene.NumClasses))
	}
	reg := registry.New()
	p := &Pipeline{
		opts:      opts,
		llm:       llm.New(llm.DefaultOptions()),
		rng:       tensor.NewRNG(opts.Seed),
		reg:       reg,
		scheduler: sched.NewWith(reg, opts.MemoryBudgetBytes),
	}
	p.tasks.Store(&taskMap{})
	return p
}

// Registry exposes the pipeline's model registry for publication,
// rollback, and version introspection.
func (p *Pipeline) Registry() *registry.Registry { return p.reg }

// task looks up a defined task in the current task map (lock-free).
func (p *Pipeline) task(name string) (*taskState, bool) {
	ts, ok := (*p.tasks.Load())[name]
	return ts, ok
}

// payloadOf returns the Payload of a name's active artifact, if any.
func payloadOf[T any](p *Pipeline, name string) (T, bool) {
	var zero T
	a, ok := p.reg.Snapshot().Active(name)
	if !ok {
		return zero, false
	}
	v, ok := a.Payload.(T)
	if !ok {
		return zero, false
	}
	return v, true
}

// teacherModel returns the active teacher weights (nil before training).
func (p *Pipeline) teacherModel() *vit.Model {
	m, _ := payloadOf[*vit.Model](p, TeacherArtifact)
	return m
}

// ready reports whether a generalist is published (the minimum model state
// for serving any task).
func (p *Pipeline) ready() bool {
	_, ok := p.reg.Snapshot().Generalist()
	return ok
}

// publishGeneralist publishes the float teacher (provenance) and the
// quantized generalist (routable) as the next versions of their names.
// Caller holds p.mu.
func (p *Pipeline) publishGeneralist(teacher *vit.Model, qm *quant.Model) error {
	tsum, err := teacher.Checksum()
	if err != nil {
		return fmt.Errorf("itask: checksumming teacher: %w", err)
	}
	if _, err := p.reg.Publish(registry.Artifact{
		Name: TeacherArtifact, Kind: registry.Teacher,
		Bytes: int64(teacher.NumParams() * 4), Checksum: tsum, Payload: teacher,
	}); err != nil {
		return err
	}
	qsum, err := qm.Checksum()
	if err != nil {
		return fmt.Errorf("itask: checksumming generalist: %w", err)
	}
	th := p.opts.Thresholds
	lat := hwsim.SimulateAccel(p.opts.Accel, p.opts.TeacherCfg).LatencyUS
	_, err = p.reg.Publish(registry.Artifact{
		Name:      GeneralistArtifact(p.opts.Quant.Bits),
		Kind:      registry.Generalist,
		Bytes:     int64(qm.WeightBytes()),
		LatencyUS: lat,
		Checksum:  qsum,
		Detect: func(img *tensor.Tensor) []geom.Scored {
			return qm.Detect(img, th.Obj, th.NMSIoU)
		},
		DetectBatch: func(imgs []*tensor.Tensor) [][]geom.Scored {
			return qm.DetectBatch(imgs, th.Obj, th.NMSIoU)
		},
		Payload: qm,
	})
	return err
}

// publishStudent publishes a task-specific student as the next version of
// its name, wiring both the single-image and micro-batched entry points.
// Caller holds p.mu.
func (p *Pipeline) publishStudent(taskName string, student *vit.Model) error {
	sum, err := student.Checksum()
	if err != nil {
		return fmt.Errorf("itask: checksumming student for %q: %w", taskName, err)
	}
	th := p.opts.Thresholds
	lat := hwsim.SimulateAccel(p.opts.Accel, p.opts.StudentCfg).LatencyUS
	_, err = p.reg.Publish(registry.Artifact{
		Name:        StudentArtifact(taskName),
		Kind:        registry.TaskSpecific,
		Task:        taskName,
		Bytes:       int64(student.NumParams() * 4),
		LatencyUS:   lat,
		Checksum:    sum,
		Detect:      registry.DetectFunc(eval.DetectorOf(student, th)),
		DetectBatch: registry.BatchDetectFunc(eval.BatchDetectorOf(student, th)),
		Payload:     student,
	})
	return err
}

// TrainGeneralist trains the multi-task teacher on a mixture of the given
// tasks (nil means the four standard tasks), quantizes it into the
// deployable generalist, and publishes both into the registry.
func (p *Pipeline) TrainGeneralist(tasks []dataset.Task) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.teacherModel() != nil {
		return fmt.Errorf("itask: generalist already trained")
	}
	if tasks == nil {
		tasks = dataset.StandardTasks()
	}
	mixed := dataset.BuildMixed(tasks, p.opts.TrainSamplesPerTask, p.opts.Gen, p.rng.Split())
	teacher := vit.New(p.opts.TeacherCfg, p.rng.Split())
	cfg := p.opts.TrainCfg
	cfg.Seed = p.rng.Uint64()
	if _, err := distill.Train(teacher, mixed, cfg); err != nil {
		return fmt.Errorf("itask: training generalist: %w", err)
	}
	qm, err := quant.FromViT(teacher, p.opts.Quant)
	if err != nil {
		return fmt.Errorf("itask: quantizing generalist: %w", err)
	}
	return p.publishGeneralist(teacher, qm)
}

// LoadGeneralist initializes the generalist from a teacher checkpoint
// (written by itask-train or vit.SaveParams) instead of training: the
// checkpoint is loaded into the teacher architecture, quantized, and
// published. Use ReloadGeneralist to publish further versions while serving.
func (p *Pipeline) LoadGeneralist(checkpointPath string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	if p.teacherModel() != nil {
		return fmt.Errorf("itask: generalist already initialized")
	}
	return p.loadGeneralistLocked(checkpointPath, "")
}

// ReloadGeneralist publishes a new generalist version from a teacher
// checkpoint while the pipeline keeps serving: the checkpoint loads into a
// fresh model off to the side, is quantized, and becomes the routed version
// in one atomic snapshot swap — in-flight requests finish on the previous
// version. When sum is non-empty the checkpoint bytes are verified against
// it (registry-manifest integrity) before anything is published.
func (p *Pipeline) ReloadGeneralist(checkpointPath, sum string) error {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.loadGeneralistLocked(checkpointPath, sum)
}

// loadGeneralistLocked loads, quantizes, and publishes a teacher checkpoint.
// Caller holds p.mu.
func (p *Pipeline) loadGeneralistLocked(checkpointPath, sum string) error {
	teacher := vit.New(p.opts.TeacherCfg, p.rng.Split())
	var err error
	if sum != "" {
		err = teacher.LoadFileVerify(checkpointPath, sum)
	} else {
		err = teacher.LoadFile(checkpointPath)
	}
	if err != nil {
		return fmt.Errorf("itask: loading generalist checkpoint: %w", err)
	}
	qm, err := quant.FromViT(teacher, p.opts.Quant)
	if err != nil {
		return fmt.Errorf("itask: quantizing generalist: %w", err)
	}
	return p.publishGeneralist(teacher, qm)
}

// LoadStudent publishes a task-specific student from a checkpoint written by
// itask-train. The task must already be defined. Loading again (a retrained
// checkpoint) publishes the next version and atomically routes it.
func (p *Pipeline) LoadStudent(taskName, checkpointPath string) error {
	return p.LoadStudentVerified(taskName, checkpointPath, "")
}

// LoadStudentVerified is LoadStudent with checkpoint-integrity verification
// against a registry-manifest checksum (skipped when sum is empty).
func (p *Pipeline) LoadStudentVerified(taskName, checkpointPath, sum string) error {
	ts, ok := p.task(taskName)
	if !ok {
		return fmt.Errorf("itask: task %q not defined", taskName)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	student := vit.New(p.opts.StudentCfg, p.rng.Split())
	var err error
	if sum != "" {
		err = student.LoadFileVerify(checkpointPath, sum)
	} else {
		err = student.LoadFile(checkpointPath)
	}
	if err != nil {
		return fmt.Errorf("itask: loading student checkpoint: %w", err)
	}
	if err := distill.ApplyClassPriors(student, ts.priors, 0.5); err != nil {
		return err
	}
	return p.publishStudent(taskName, student)
}

// DefineTask runs the simulated LLM over a mission description, stores the
// resulting knowledge graph and class priors, and makes the task servable
// (by the generalist until a student is distilled). The task table swap is
// atomic: concurrent detection sees either the old set of tasks or the new
// one, never a partial write.
func (p *Pipeline) DefineTask(name, description string) error {
	if name == "" {
		return fmt.Errorf("itask: empty task name")
	}
	if _, dup := p.task(name); dup {
		return fmt.Errorf("itask: task %q already defined", name)
	}
	g, err := p.llm.Generate(name, description)
	if err != nil {
		return fmt.Errorf("itask: generating knowledge graph: %w", err)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	old := *p.tasks.Load()
	if _, dup := old[name]; dup {
		return fmt.Errorf("itask: task %q already defined", name)
	}
	next := make(taskMap, len(old)+1)
	for k, v := range old {
		next[k] = v
	}
	next[name] = &taskState{
		name:        name,
		description: description,
		graph:       g,
		priors:      kg.ClassPriors(g, "task:"+name),
	}
	p.tasks.Store(&next)
	return nil
}

// DistillStudent builds the task-specific configuration for a defined task:
// a student distilled from the teacher on task-domain data, conditioned with
// the task's KG priors, and published into the registry. Distilling again
// for the same task publishes the next version and atomically routes it —
// in-flight requests finish on the previous version.
func (p *Pipeline) DistillStudent(taskName string, domain scene.DomainID) error {
	ts, ok := p.task(taskName)
	if !ok {
		return fmt.Errorf("itask: task %q not defined", taskName)
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	teacher := p.teacherModel()
	if teacher == nil {
		return fmt.Errorf("itask: train the generalist first")
	}
	task := dataset.Task{Name: taskName, Domain: domain, Description: ts.description}
	set := dataset.Build(task, p.opts.DistillSamples, p.opts.Gen, p.rng.Split())
	student := vit.New(p.opts.StudentCfg, p.rng.Split())
	dcfg := p.opts.DistillCfg
	dcfg.Train.Seed = p.rng.Uint64()
	if _, err := distill.Distill(teacher, student, set, dcfg); err != nil {
		return fmt.Errorf("itask: distilling student for %q: %w", taskName, err)
	}
	// Task specialization: a supervised fine-tune on the task data after
	// distillation ("optimized for high accuracy in defined tasks").
	ftcfg := distill.DefaultTrainConfig()
	ftcfg.Epochs = dcfg.Train.Epochs
	ftcfg.LR = 1e-3
	ftcfg.Seed = p.rng.Uint64()
	if _, err := distill.Train(student, set, ftcfg); err != nil {
		return fmt.Errorf("itask: fine-tuning student for %q: %w", taskName, err)
	}
	if err := distill.ApplyClassPriors(student, ts.priors, 0.5); err != nil {
		return err
	}
	return p.publishStudent(taskName, student)
}

// AdaptStudent builds a task-specific configuration from only `shots`
// support scenes per class — the few-shot path (claim C5): a
// student-architecture multi-task base (distilled once from the teacher and
// published as FewShotBaseArtifact) is cloned, conditioned with the task's
// knowledge-graph priors, and fine-tuned on the tiny support set. Use
// DistillStudent instead when abundant task data is available. Adapting
// again publishes the next version.
func (p *Pipeline) AdaptStudent(taskName string, domain scene.DomainID, shots int) error {
	ts, ok := p.task(taskName)
	if !ok {
		return fmt.Errorf("itask: task %q not defined", taskName)
	}
	if shots <= 0 {
		return fmt.Errorf("itask: shots must be positive")
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	teacher := p.teacherModel()
	if teacher == nil {
		return fmt.Errorf("itask: train the generalist first")
	}
	base, ok := payloadOf[*vit.Model](p, FewShotBaseArtifact)
	if !ok {
		base = vit.New(p.opts.StudentCfg, p.rng.Split())
		mixed := dataset.BuildMixed(dataset.StandardTasks(), p.opts.TrainSamplesPerTask, p.opts.Gen, p.rng.Split())
		dcfg := p.opts.DistillCfg
		dcfg.Train.Seed = p.rng.Uint64()
		if _, err := distill.Distill(teacher, base, mixed, dcfg); err != nil {
			return fmt.Errorf("itask: building few-shot base: %w", err)
		}
		bsum, err := base.Checksum()
		if err != nil {
			return fmt.Errorf("itask: checksumming few-shot base: %w", err)
		}
		if _, err := p.reg.Publish(registry.Artifact{
			Name: FewShotBaseArtifact, Kind: registry.FewShotBase,
			Bytes: int64(base.NumParams() * 4), Checksum: bsum, Payload: base,
		}); err != nil {
			return err
		}
	}
	student := vit.New(p.opts.StudentCfg, p.rng.Split())
	if err := base.CloneWeightsTo(student); err != nil {
		return err
	}
	task := dataset.Task{Name: taskName, Domain: domain, Description: ts.description}
	task.Classes = scene.GetDomain(domain).Classes
	support := dataset.BuildFewShot(task, shots, p.opts.Gen, p.rng.Split())
	fcfg := distill.DefaultFewShotConfig()
	fcfg.Train.Seed = p.rng.Uint64()
	if _, err := distill.FewShotAdapt(student, ts.priors, support, fcfg); err != nil {
		return fmt.Errorf("itask: few-shot adapting %q: %w", taskName, err)
	}
	return p.publishStudent(taskName, student)
}

// RollbackModel demotes the active version of a named artifact and
// reactivates the newest healthy prior version — the manual rollback lever
// behind automatic health-driven rollback.
func (p *Pipeline) RollbackModel(name string) (registry.ArtifactID, error) {
	return p.reg.Rollback(name)
}

// ModelInfo describes which configuration served a detection call.
type ModelInfo struct {
	Name string
	Kind string
	// Artifact is the full versioned artifact ID (name@vN#sum) that served
	// the call, for per-version attribution.
	Artifact string
	// LatencyUS and EnergyUJ are the simulated accelerator cost of the
	// inference that produced the detections.
	LatencyUS float64
	EnergyUJ  float64
}

// filterByPriors applies a task's knowledge-graph priors to raw
// detections: classes below PriorThreshold are dropped, survivors are
// annotated with their relevance and sorted by score.
func (p *Pipeline) filterByPriors(ts *taskState, raw []geom.Scored) []Detection {
	var out []Detection
	for _, d := range raw {
		rel := ts.priors[d.Class]
		if rel < p.opts.PriorThreshold {
			continue
		}
		out = append(out, Detection{
			Box:       d.Box,
			Class:     scene.ClassID(d.Class).Name(),
			ClassID:   d.Class,
			Score:     d.Score,
			Relevance: rel,
		})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Score > out[j].Score })
	return out
}

// modelInfo builds the simulated accelerator cost report for an inference
// served by `model` at the given micro-batch size (per-image figures).
func (p *Pipeline) modelInfo(model *sched.Model, batch int) ModelInfo {
	cfg := p.opts.TeacherCfg
	if model.Kind == sched.TaskSpecific {
		cfg = p.opts.StudentCfg
	}
	rep := hwsim.SimulateAccelBatch(p.opts.Accel, cfg, batch)
	return ModelInfo{
		Name:      model.Name,
		Kind:      model.Kind.String(),
		Artifact:  model.ID.String(),
		LatencyUS: rep.LatencyUS,
		EnergyUJ:  rep.TotalUJ,
	}
}

// ValidateImage checks that img is a well-formed model input — a (3,S,S)
// tensor for the pipeline's configured image size — without running it.
// Malformed input fails with an error wrapping serve.ErrBadShape, so the
// serving layer (which calls this at admission via the ImageValidator
// interface) rejects it before it can reach a panicking kernel inside a
// shared micro-batch.
func (p *Pipeline) ValidateImage(img *tensor.Tensor) error {
	size := p.opts.TeacherCfg.ImageSize
	ch := p.opts.TeacherCfg.Channels
	switch {
	case img == nil:
		return fmt.Errorf("itask: nil image: %w", serve.ErrBadShape)
	case len(img.Shape) != 3 || img.Shape[0] != ch || img.Shape[1] != size || img.Shape[2] != size:
		return fmt.Errorf("itask: image shape %v, want [%d %d %d]: %w",
			img.Shape, ch, size, size, serve.ErrBadShape)
	case len(img.Data) != ch*size*size:
		return fmt.Errorf("itask: image data has %d values for shape %v: %w",
			len(img.Data), img.Shape, serve.ErrBadShape)
	}
	return nil
}

// validateImages applies ValidateImage to a whole batch.
func (p *Pipeline) validateImages(imgs []*tensor.Tensor) error {
	for i, img := range imgs {
		if err := p.ValidateImage(img); err != nil {
			return fmt.Errorf("image %d: %w", i, err)
		}
	}
	return nil
}

// Detect runs task-conditioned detection on one (3,H,W) image: the
// scheduler picks the configuration, the model detects, and the task's KG
// priors filter irrelevant classes. Lock-free with respect to concurrent
// task definition, training, and model publication.
func (p *Pipeline) Detect(taskName string, img *tensor.Tensor) ([]Detection, ModelInfo, error) {
	ts, ok := p.task(taskName)
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("itask: task %q not defined", taskName)
	}
	if !p.ready() {
		return nil, ModelInfo{}, fmt.Errorf("itask: train the generalist first")
	}
	if err := p.ValidateImage(img); err != nil {
		return nil, ModelInfo{}, err
	}
	raw, model, err := p.scheduler.Detect(sched.Request{Task: taskName}, img)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return p.filterByPriors(ts, raw), p.modelInfo(model, 1), nil
}

// DetectBatch runs task-conditioned detection on a micro-batch of images
// with a single scheduler selection and a single (batched) model forward —
// the entry point the serving layer's dynamic batcher calls. The returned
// ModelInfo carries per-image latency/energy at this batch size, so the
// weight-stationary amortization of batching shows up directly in the
// numbers.
func (p *Pipeline) DetectBatch(taskName string, imgs []*tensor.Tensor) ([][]Detection, ModelInfo, error) {
	if len(imgs) == 0 {
		return nil, ModelInfo{}, fmt.Errorf("itask: empty batch")
	}
	ts, ok := p.task(taskName)
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("itask: task %q not defined", taskName)
	}
	if !p.ready() {
		return nil, ModelInfo{}, fmt.Errorf("itask: train the generalist first")
	}
	if err := p.validateImages(imgs); err != nil {
		return nil, ModelInfo{}, err
	}
	raw, model, err := p.scheduler.DetectBatch(sched.Request{Task: taskName}, imgs)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return p.decodeBatch(ts, raw, model, len(imgs))
}

// DetectBatchOn is DetectBatch pinned to a specific registered variant —
// a bare artifact name or a full versioned ID — instead of the scheduler's
// preference: the execution path behind the serving layer's fault-tolerant
// lanes, where a batch must run on exactly the variant it was coalesced (or
// degraded) for. A batch pinned to a version that has since been demoted
// transparently executes on the name's rolled-back active version.
func (p *Pipeline) DetectBatchOn(variant, taskName string, imgs []*tensor.Tensor) ([][]Detection, ModelInfo, error) {
	if len(imgs) == 0 {
		return nil, ModelInfo{}, fmt.Errorf("itask: empty batch")
	}
	ts, ok := p.task(taskName)
	if !ok {
		return nil, ModelInfo{}, fmt.Errorf("itask: task %q not defined", taskName)
	}
	if !p.ready() {
		return nil, ModelInfo{}, fmt.Errorf("itask: train the generalist first")
	}
	if err := p.validateImages(imgs); err != nil {
		return nil, ModelInfo{}, err
	}
	raw, model, err := p.scheduler.DetectBatchOn(variant, imgs)
	if err != nil {
		return nil, ModelInfo{}, err
	}
	return p.decodeBatch(ts, raw, model, len(imgs))
}

// decodeBatch applies the task's KG priors to every image's raw detections
// and attaches the per-image accelerator cost report.
func (p *Pipeline) decodeBatch(ts *taskState, raw [][]geom.Scored, model *sched.Model, batch int) ([][]Detection, ModelInfo, error) {
	out := make([][]Detection, len(raw))
	for i, dets := range raw {
		out[i] = p.filterByPriors(ts, dets)
	}
	return out, p.modelInfo(model, batch), nil
}

// Tasks returns the names of all defined tasks, sorted. Lock-free.
func (p *Pipeline) Tasks() []string {
	m := *p.tasks.Load()
	names := make([]string, 0, len(m))
	for name := range m {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Priors returns the knowledge-graph class priors of a defined task,
// indexed by scene.ClassID.
func (p *Pipeline) Priors(taskName string) ([]float64, error) {
	ts, ok := p.task(taskName)
	if !ok {
		return nil, fmt.Errorf("itask: task %q not defined", taskName)
	}
	return append([]float64(nil), ts.priors...), nil
}

// Graph returns the knowledge graph of a defined task.
func (p *Pipeline) Graph(taskName string) (*kg.Graph, error) {
	ts, ok := p.task(taskName)
	if !ok {
		return nil, fmt.Errorf("itask: task %q not defined", taskName)
	}
	return ts.graph, nil
}

// Teacher exposes the trained float generalist (nil before training); used
// by the experiment harness. The returned model is the active published
// version — immutable, so safe to read concurrently.
func (p *Pipeline) Teacher() *vit.Model { return p.teacherModel() }

// Quantized exposes the deployed quantized generalist (nil before training).
func (p *Pipeline) Quantized() *quant.Model {
	if a, ok := p.reg.Snapshot().Generalist(); ok {
		if qm, ok := a.Payload.(*quant.Model); ok {
			return qm
		}
	}
	return nil
}

// Student returns the distilled model behind the task's active student
// version, or nil.
func (p *Pipeline) Student(taskName string) *vit.Model {
	if a, ok := p.reg.Snapshot().ForTask(taskName); ok {
		if m, ok := a.Payload.(*vit.Model); ok {
			return m
		}
	}
	return nil
}

// SchedulerStats reports model-cache behaviour.
func (p *Pipeline) SchedulerStats() sched.CacheStats { return p.scheduler.Stats() }

// RegistryStats reports the model registry's lifecycle counters: versions
// published, explicit rollbacks, and health demotions.
func (p *Pipeline) RegistryStats() registry.Stats { return p.reg.Stats() }

// serveBackend adapts the pipeline to the serving layer's Backend
// interface (plus the optional FallbackRouter, VariantEvicter,
// ImageValidator, CacheStatser, VariantHealthSink, and RegistryStatser
// extensions). Payloads are []Detection per image.
type serveBackend struct{ p *Pipeline }

func (b serveBackend) Route(task string) (string, error) {
	if _, ok := b.p.task(task); !ok {
		return "", fmt.Errorf("itask: task %q not defined", task)
	}
	return b.p.scheduler.Route(sched.Request{Task: task})
}

// RouteFallback names the quantized generalist as the degraded path for
// any defined task, letting the server keep serving a task whose
// task-specific lane tripped its circuit breaker.
func (b serveBackend) RouteFallback(task string) (string, error) {
	if _, ok := b.p.task(task); !ok {
		return "", fmt.Errorf("itask: task %q not defined", task)
	}
	return b.p.scheduler.RouteFallback(sched.Request{Task: task})
}

func (b serveBackend) DetectBatch(variant, task string, imgs []*tensor.Tensor) ([]any, string, error) {
	dets, info, err := b.p.DetectBatchOn(variant, task, imgs)
	if err != nil {
		return nil, "", err
	}
	payloads := make([]any, len(dets))
	for i := range dets {
		payloads[i] = dets[i]
	}
	// Report the full versioned ID so serve metrics attribute work
	// per-version.
	return payloads, info.Artifact, nil
}

// EvictVariant drops the variant's weights from the model cache after the
// server saw it panic or hang, forcing a fresh load on next selection.
func (b serveBackend) EvictVariant(variant string) { b.p.scheduler.Evict(variant) }

// VariantUnhealthy is the serving layer's health verdict on a versioned
// variant (panic, watchdog abandonment, or a tripped breaker). Demoting the
// version in the registry quarantines it and — when it is the active
// version with a healthy predecessor — atomically rolls the name back to
// the last-known-good version, so subsequent routing (and retries of
// batches pinned to the bad version) land on restored weights.
func (b serveBackend) VariantUnhealthy(variant, task, reason string) {
	id, err := registry.ParseID(variant)
	if err != nil {
		return // bare or foreign variant string: nothing to demote
	}
	b.p.reg.Demote(id)
}

// ValidateImage rejects malformed input at admission (serve.ErrBadShape)
// before it can reach a kernel.
func (b serveBackend) ValidateImage(img *tensor.Tensor) error { return b.p.ValidateImage(img) }

func (b serveBackend) CacheStats() sched.CacheStats { return b.p.scheduler.Stats() }

// RegistryStats surfaces publish/rollback counters in serve snapshots.
func (b serveBackend) RegistryStats() registry.Stats { return b.p.reg.Stats() }

// RouteEpoch is the registry's snapshot sequence number — bumped by every
// publish, demotion, and rollback — so the serving layer can memoize
// routing decisions and have them invalidated the moment any model swap
// could change them. Lock-free (one atomic pointer load).
func (b serveBackend) RouteEpoch() uint64 { return b.p.reg.Snapshot().Seq() }

// OnRetire forwards the serving layer's retirement hook to the registry: it
// fires with each versioned artifact ID a publish supersedes or a
// demotion/rollback quarantines, inside the swap and before the new
// snapshot serves, so the server tears down the version's cached results
// (including lock-free hot-tier replicas) atomically with the version.
func (b serveBackend) OnRetire(fn func(artifact string)) { b.p.reg.OnRetire(fn) }

// PayloadBytes estimates the resident size of one DetectBatch payload
// ([]Detection) so the serving layer's result cache can charge entries
// against its byte budget.
func (b serveBackend) PayloadBytes(payload any) int64 {
	dets, ok := payload.([]Detection)
	if !ok {
		return 0 // unknown payload: let the cache apply its default
	}
	size := int64(unsafe.Sizeof(dets)) // slice header
	for i := range dets {
		size += int64(unsafe.Sizeof(dets[i])) + int64(len(dets[i].Class))
	}
	return size
}

// ServeBackend exposes the pipeline as a serve.Backend so a serve.Server
// (or cmd/itask-serve) can run concurrent micro-batched inference over it.
// Models may be (re)published, adapted, and rolled back while serving.
func (p *Pipeline) ServeBackend() serve.Backend { return serveBackend{p: p} }

// HardwareComparison simulates the deployed generalist on the accelerator,
// the GPU baseline, and the CPU baseline.
func (p *Pipeline) HardwareComparison() hwsim.Comparison {
	return hwsim.Compare(p.opts.Accel, hwsim.DefaultGPU(), hwsim.DefaultCPU(), p.opts.TeacherCfg)
}
