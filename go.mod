module itask

go 1.22
