package itask

import (
	"context"
	"path/filepath"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"itask/internal/geom"
	"itask/internal/registry"
	"itask/internal/serve"
	"itask/internal/tensor"
	"itask/internal/vit"
)

// poisonStudent is a bad new "patrol-student" version: it panics whenever it
// executes a coalesced batch (single-image batches pass, returning nothing,
// so the test's zero-failure guarantee is deterministic — the serve layer
// demotes the version synchronously on the first panic, before any bisected
// retry or later batch can fail terminally on it).
func poisonStudent() registry.Artifact {
	return registry.Artifact{
		Name: "patrol-student", Kind: registry.TaskSpecific, Task: "patrol",
		Bytes: 1 << 16, LatencyUS: 50,
		Detect: func(img *tensor.Tensor) []geom.Scored { return nil },
		DetectBatch: func(imgs []*tensor.Tensor) [][]geom.Scored {
			if len(imgs) >= 2 {
				panic("poisoned weights")
			}
			return make([][]geom.Scored, len(imgs))
		},
	}
}

// The headline hot-swap proof: sustained concurrent serve traffic across
// repeated publish/rollback cycles — healthy student republishes alternating
// with poisoned versions that panic under load — completes every request.
// Each bad version is health-evicted and automatically rolled back to the
// last-known-good version (visible in the registry counters and the
// per-version /metricsz attribution), batches pinned to the demoted version
// transparently re-resolve to the restored one, and no request ever fails.
// Run under -race to also prove the snapshot swaps never tear.
func TestHotSwapUnderLoad(t *testing.T) {
	opts := DefaultOptions()
	rng := tensor.NewRNG(11)
	dir := t.TempDir()
	teacherPath := filepath.Join(dir, "teacher.ckpt")
	if err := vit.New(opts.TeacherCfg, rng.Split()).SaveFile(teacherPath); err != nil {
		t.Fatal(err)
	}
	studentPath := filepath.Join(dir, "student.ckpt")
	if err := vit.New(opts.StudentCfg, rng.Split()).SaveFile(studentPath); err != nil {
		t.Fatal(err)
	}

	p := New(opts)
	if err := p.LoadGeneralist(teacherPath); err != nil {
		t.Fatal(err)
	}
	if err := p.DefineTask("patrol", "watch the perimeter for vehicles and people"); err != nil {
		t.Fatal(err)
	}
	if err := p.LoadStudent("patrol", studentPath); err != nil {
		t.Fatal(err)
	}

	cfg := serve.DefaultConfig()
	cfg.Workers = 2
	cfg.MaxBatch = 8
	cfg.BatchDelay = 500 * time.Microsecond
	cfg.RetryBudget = 2
	cfg.Watchdog = 0
	// Lane breakers off: this test isolates the panic-evict -> demote ->
	// rollback path; an open breaker would correctly shed requests with 503s,
	// which is exactly the failure mode the rollback exists to avoid.
	cfg.BreakerThreshold = 0
	srv, err := serve.New(p.ServeBackend(), cfg)
	if err != nil {
		t.Fatal(err)
	}
	defer srv.Shutdown(context.Background())

	img := tensor.New(3, opts.TeacherCfg.ImageSize, opts.TeacherCfg.ImageSize)
	const clients = 8
	var served, failed atomic.Uint64
	var firstErr atomic.Value
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := srv.Detect(context.Background(), serve.Request{Task: "patrol", Image: img}); err != nil {
					failed.Add(1)
					firstErr.CompareAndSwap(nil, err)
				} else {
					served.Add(1)
				}
			}
		}()
	}

	waitFor := func(what string, cond func() bool) {
		t.Helper()
		deadline := time.Now().Add(20 * time.Second)
		for !cond() {
			if time.Now().After(deadline) {
				t.Fatalf("timed out waiting for %s (served=%d failed=%d)", what, served.Load(), failed.Load())
			}
			time.Sleep(time.Millisecond)
		}
	}

	const cycles = 6
	var poisonIDs []string
	for i := 0; i < cycles; i++ {
		if i%2 == 0 {
			if err := p.LoadStudent("patrol", studentPath); err != nil {
				t.Fatal(err)
			}
		} else {
			id, err := p.Registry().Publish(poisonStudent())
			if err != nil {
				t.Fatal(err)
			}
			poisonIDs = append(poisonIDs, id.String())
			want := uint64(len(poisonIDs))
			waitFor("bad version demotion", func() bool { return p.RegistryStats().Demotions >= want })
			if snap := p.Registry().Snapshot(); !snap.Quarantined(id.String()) {
				t.Fatalf("poisoned version %s not quarantined after demotion", id)
			}
		}
		// Let traffic flow on whatever is now active before the next swap.
		base := served.Load()
		waitFor("post-swap traffic", func() bool { return served.Load() >= base+50 })
	}
	close(stop)
	wg.Wait()

	if n := failed.Load(); n != 0 {
		t.Fatalf("%d requests failed during hot swaps (first: %v)", n, firstErr.Load())
	}
	stats := p.RegistryStats()
	if want := uint64(len(poisonIDs)); stats.Rollbacks < want || stats.Demotions < want {
		t.Errorf("registry stats = %+v, want >= %d rollbacks and demotions", stats, want)
	}

	snap := srv.Snapshot()
	if snap.Failed != 0 {
		t.Errorf("serve snapshot reports %d failed requests", snap.Failed)
	}
	if snap.Registry == nil || snap.Registry.Rollbacks != stats.Rollbacks {
		t.Errorf("registry stats not surfaced in /metricsz snapshot: %+v", snap.Registry)
	}
	perModel := map[string]serve.ModelStats{}
	for _, ms := range snap.PerModel {
		perModel[ms.Model] = ms
	}
	for _, id := range poisonIDs {
		if perModel[id].Panics == 0 {
			t.Errorf("poisoned version %s shows no panics in per-version metrics: %+v", id, perModel[id])
		}
	}
	active, ok := p.Registry().Snapshot().Active("patrol-student")
	if !ok {
		t.Fatal("no active patrol-student after the swap cycles")
	}
	if got := perModel[active.ID.String()]; got.Completed == 0 {
		t.Errorf("active version %s completed nothing: %+v", active.ID, got)
	}
}
